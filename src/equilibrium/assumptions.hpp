#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/configuration.hpp"
#include "core/enumerate.hpp"
#include "core/game.hpp"

/// \file assumptions.hpp
/// The two hypotheses of Section 4, as executable checkers.
///
/// *Assumption 1 (Never alone):* in any configuration, every coin mined by
/// at most one miner is a better response for some miner. Holds in practice
/// when miners vastly outnumber coins; checking it exactly requires a walk
/// of the whole configuration space, so the exact checker is bounded.
///
/// *Assumption 2 (Generic game):* for all coins c ≠ c' and miner subsets
/// P, P': F(c)/Σ_P m_p ≠ F(c')/Σ_{P'} m_p. Exact verification enumerates
/// the 2^n−1 nonempty subset sums, so it is likewise bounded.

namespace goc {

/// Counterexample to Assumption 1: in configuration `s`, coin `coin` has at
/// most one miner and nobody improves by moving there.
struct NeverAloneViolation {
  Configuration s;
  CoinId coin;

  std::string to_string() const;
};

/// Checks Assumption 1 *at one configuration*: every coin with
/// |P_c(s)| ≤ 1 is a better response for some miner. Returns the violated
/// coin if any.
std::optional<CoinId> never_alone_violation_at(const Game& game,
                                               const Configuration& s);

/// Exhaustive Assumption 1 check (throws std::invalid_argument when the
/// full space exceeds `max_configs` / `opts.max_configs`). Runs on the
/// symmetry-reduced parallel engine: violations are orbit-invariant, so
/// canonical representatives suffice, and the returned witness is the
/// first violating *canonical* configuration in canonical odometer order —
/// deterministic at any thread count, though not necessarily the same
/// configuration the legacy scan reports. Returns nullopt when the
/// assumption holds (exactly iff the scan reference does).
std::optional<NeverAloneViolation> find_never_alone_violation(
    const Game& game, std::uint64_t max_configs = 1u << 22);
std::optional<NeverAloneViolation> find_never_alone_violation(
    const Game& game, const EnumerationOptions& opts);

/// The legacy single-threaded full-space walker — the validation reference
/// for `--compare-scan` runs and golden tests (first violation in full
/// odometer order).
std::optional<NeverAloneViolation> find_never_alone_violation_scan(
    const Game& game, std::uint64_t max_configs = 1u << 22);

/// Counterexample to Assumption 2: F(c)·sum' == F(c')·sum for nonempty
/// subset sums `sum`, `sum'`.
struct GenericityViolation {
  CoinId c;
  CoinId c_prime;
  Rational subset_sum;        ///< Σ_P m_p for the c side
  Rational subset_sum_prime;  ///< Σ_{P'} m_p for the c' side

  std::string to_string() const;
};

/// Exact Assumption 2 check by subset-sum enumeration. Throws
/// std::invalid_argument when n > max_miners (2^n sums). Returns a
/// violation witness, or nullopt when the game is generic.
std::optional<GenericityViolation> find_genericity_violation(
    const Game& game, std::size_t max_miners = 20);

/// True iff the game satisfies Assumption 2 (wrapper over the above).
bool is_generic(const Game& game, std::size_t max_miners = 20);

}  // namespace goc
