#pragma once

#include <cstdint>
#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"
#include "util/rng.hpp"

/// \file enumerate.hpp
/// Finding *all* (or many) pure equilibria of a game.
///
/// Exhaustive enumeration walks the full C^n space and is only feasible for
/// small games; sampled enumeration runs better-response learning from
/// random starts (convergence guaranteed by Theorem 1) and deduplicates the
/// reached equilibria — a sound but possibly incomplete method for large
/// games. Section 4's experiments use the exhaustive form; benchmark sweeps
/// use the sampled form.

namespace goc {

/// All pure equilibria in odometer order. Throws std::invalid_argument when
/// |C|^n > max_configs.
std::vector<Configuration> enumerate_equilibria(const Game& game,
                                                std::uint64_t max_configs = 1u << 22);

/// Distinct equilibria reached by best-response learning from `attempts`
/// uniformly random starting configurations. Deduplicated by assignment;
/// sound (every result is an equilibrium) but possibly incomplete.
std::vector<Configuration> sample_equilibria(const Game& game, Rng& rng,
                                             std::size_t attempts,
                                             std::uint64_t max_steps_per_attempt = 1u << 20);

}  // namespace goc
