#pragma once

#include <cstdint>
#include <vector>

#include "core/configuration.hpp"
#include "core/enumerate.hpp"
#include "core/game.hpp"
#include "util/rng.hpp"

/// \file enumerate.hpp
/// Finding *all* (or many) pure equilibria of a game.
///
/// Exhaustive enumeration runs on the symmetry-reduced parallel engine of
/// core/enumerate.hpp: only canonical representatives are walked (i128
/// equilibrium checks inside the walk), and the full equilibrium set is
/// recovered by orbit expansion — bit-identical to the legacy callback
/// walker at any thread count. Sampled enumeration runs better-response
/// learning from random starts (convergence guaranteed by Theorem 1) on
/// the incremental `BestResponseIndex` and deduplicates the reached
/// equilibria — sound but possibly incomplete. Section 4's experiments use
/// the exhaustive form; benchmark sweeps use the sampled form.

namespace goc {

/// Canonical equilibrium representatives (one per symmetry orbit) with
/// their orbit sizes — the compact answer when only counts or per-orbit
/// statistics are needed.
struct CanonicalEquilibria {
  /// In canonical odometer order.
  std::vector<Configuration> representatives;
  /// orbit_sizes[i] = |orbit of representatives[i]| (1 when symmetry off
  /// or the class partition is trivial).
  std::vector<std::uint64_t> orbit_sizes;

  /// Total number of pure equilibria (Σ orbit sizes).
  std::uint64_t total() const;
};

/// One canonical representative per equilibrium orbit. Throws
/// std::invalid_argument when |C|^n > opts.max_configs.
CanonicalEquilibria enumerate_canonical_equilibria(const Game& game,
                                                   const EnumerationOptions& opts);

/// All pure equilibria in odometer order (engine path: canonical walk +
/// orbit expansion; identical output to `enumerate_equilibria_scan` at any
/// `opts.threads`). Throws std::invalid_argument when |C|^n > max_configs.
std::vector<Configuration> enumerate_equilibria(const Game& game,
                                                std::uint64_t max_configs = 1u << 22);
std::vector<Configuration> enumerate_equilibria(const Game& game,
                                                const EnumerationOptions& opts);

/// The legacy single-threaded callback walker over the full space —
/// the validation reference for `--compare-scan` runs and golden tests.
std::vector<Configuration> enumerate_equilibria_scan(const Game& game,
                                                     std::uint64_t max_configs = 1u << 22);

/// Distinct equilibria reached by best-response learning from `attempts`
/// uniformly random starting configurations, driven by the incremental
/// `BestResponseIndex` and deduplicated through a hash-bucket index.
/// Sound (every result is an equilibrium) but possibly incomplete.
std::vector<Configuration> sample_equilibria(const Game& game, Rng& rng,
                                             std::size_t attempts,
                                             std::uint64_t max_steps_per_attempt = 1u << 20);

}  // namespace goc
