#include "equilibrium/security.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace goc {

Rational domination_share(const Game& game, const Configuration& s, CoinId c) {
  GOC_CHECK_ARG(&s.system() == &game.system(),
                "configuration belongs to a different system");
  GOC_CHECK_ARG(game.system().valid_coin(c), "unknown coin id");
  if (s.empty_coin(c)) return Rational(0);
  Rational best(0);
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    const MinerId miner(p);
    if (s.of(miner) != c) continue;
    const Rational& m = game.system().power(miner);
    if (m > best) best = m;
  }
  return best / s.mass(c);
}

std::optional<MinerId> majority_controller(const Game& game,
                                           const Configuration& s, CoinId c) {
  GOC_CHECK_ARG(&s.system() == &game.system(),
                "configuration belongs to a different system");
  if (s.empty_coin(c)) return std::nullopt;
  const Rational half = s.mass(c) / Rational(2);
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    const MinerId miner(p);
    if (s.of(miner) != c) continue;
    if (game.system().power(miner) > half) return miner;
  }
  return std::nullopt;
}

std::string SecurityReport::to_string() const {
  std::ostringstream os;
  os << "SecurityReport{occupied=" << occupied
     << ", majority_controlled=" << majority_controlled << ", max_share=[";
  for (std::size_t i = 0; i < max_share.size(); ++i) {
    if (i != 0) os << ", ";
    os << max_share[i].to_string();
  }
  os << "]}";
  return os.str();
}

SecurityReport security_report(const Game& game, const Configuration& s) {
  SecurityReport report;
  report.max_share.reserve(game.num_coins());
  report.controller.reserve(game.num_coins());
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    report.max_share.push_back(domination_share(game, s, coin));
    report.controller.push_back(majority_controller(game, s, coin));
    if (report.controller.back().has_value()) ++report.majority_controlled;
    if (!s.empty_coin(coin)) ++report.occupied;
  }
  return report;
}

std::optional<DominationTarget> best_domination_target(
    const Game& game, MinerId attacker,
    const std::vector<Configuration>& equilibria) {
  GOC_CHECK_ARG(game.system().valid_miner(attacker), "unknown miner id");
  std::optional<DominationTarget> best;
  for (const Configuration& eq : equilibria) {
    const CoinId coin = eq.of(attacker);
    const Rational share = game.system().power(attacker) / eq.mass(coin);
    if (!best || share > best->attacker_share) {
      best = DominationTarget{eq, coin, share};
    }
  }
  return best;
}

}  // namespace goc
