#include "equilibrium/construct.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace goc {

CoinId best_insertion_coin(const RewardFunction& rewards,
                           const std::vector<Rational>& masses,
                           const Rational& power) {
  GOC_CHECK_ARG(masses.size() == rewards.num_coins(),
                "mass vector arity must match the coin set");
  GOC_CHECK_ARG(power.is_positive(), "joining power must be positive");
  CoinId best(0);
  // Maximizing F(c)·m/(M_c+m) over c is maximizing F(c)/(M_c+m).
  Rational best_value = rewards(CoinId(0)) / (masses[0] + power);
  for (std::uint32_t c = 1; c < rewards.num_coins(); ++c) {
    const Rational value = rewards(CoinId(c)) / (masses[c] + power);
    if (value > best_value) {
      best_value = value;
      best = CoinId(c);
    }
  }
  return best;
}

Configuration greedy_equilibrium(const Game& game) {
  // Claim 6's stability-preservation argument compares miners across a
  // common action set; with player-specific access the construction can
  // leave earlier miners unstable. Restricted games obtain equilibria via
  // better-response learning instead (which always terminates, Theorem 1).
  GOC_CHECK_ARG(game.access().is_unrestricted(),
                "greedy_equilibrium requires the unrestricted access policy");
  const System& system = game.system();
  std::vector<std::size_t> order(system.num_miners());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return system.powers()[a] > system.powers()[b];
  });

  std::vector<Rational> masses(system.num_coins(), Rational(0));
  std::vector<CoinId> assignment(system.num_miners());
  for (const std::size_t idx : order) {
    const Rational& m = system.powers()[idx];
    const CoinId c = best_insertion_coin(game.rewards(), masses, m);
    assignment[idx] = c;
    masses[c.value] += m;
  }
  return Configuration(game.system_ptr(), std::move(assignment));
}

}  // namespace goc
