#include "equilibrium/enumerate.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/generators.hpp"
#include "core/move_compare.hpp"
#include "core/moves.hpp"
#include "dynamics/best_response_index.hpp"
#include "util/assert.hpp"

namespace goc {

std::uint64_t CanonicalEquilibria::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t size : orbit_sizes) sum += size;
  return sum;
}

namespace {

/// `is_equilibrium` on the raw integer walk state: p improves by moving to
/// c iff F(c)/(M_c + m_p) > F(s.p)/M_{s.p} — cross-multiplied, first
/// improving miner exits.
bool integer_equilibrium(const IntegerGameView& view, const IntegerWalkState& st) {
  const std::size_t n = view.power.size();
  const std::uint32_t coins = static_cast<std::uint32_t>(view.reward.size());
  // Highest miner id first: generators emit powers sorted descending, and
  // small miners improve most easily, so this exits earliest on average
  // (the boolean is order-independent either way).
  for (std::size_t p = n; p-- > 0;) {
    const std::uint32_t here = st.digits[p];
    const i128 mp = view.power[p];
    const i128 n_here = view.reward[here];
    const i128 d_here = st.mass[here];
    for (std::uint32_t c = 0; c < coins; ++c) {
      if (c == here) continue;
      if (compare_positive_fractions(view.reward[c], st.mass[c] + mp, n_here,
                                     d_here) > 0) {
        return false;
      }
    }
  }
  return true;
}

/// Shared core: both public entry points compute the class partition once
/// and pass it here (the orbit expansion below must use the exact
/// partition the walk used).
CanonicalEquilibria enumerate_canonical_with(const Game& game,
                                             const EnumerationOptions& opts,
                                             const SymmetryClasses& classes) {
  const auto count = configuration_count(game.system());
  GOC_CHECK_ARG(count.has_value() && *count <= opts.max_configs,
                "configuration space too large to enumerate");
  const MoveComparator cmp(game);

  std::vector<std::vector<Configuration>> found_per_shard;
  if (cmp.integer_mode() && game.access().is_unrestricted()) {
    // Integer fast path: raw-i128 odometer, materialize hits only.
    const IntegerGameView view = integer_game_view(game);
    found_per_shard = enumerate_states_integer(
        game, view, classes, opts,
        [](std::size_t) { return std::vector<Configuration>(); },
        [&](std::vector<Configuration>& found, const IntegerWalkState& st,
            std::size_t) {
          if (integer_equilibrium(view, st)) {
            found.push_back(materialize_configuration(game.system_ptr(), st.digits));
          }
          return true;
        });
  } else {
    struct ShardState {
      AccessTracker tracker;
      std::vector<Configuration> found;
    };
    auto states = enumerate_states(
        game.system_ptr(), classes, opts,
        [&](std::size_t) { return ShardState{AccessTracker(game), {}}; },
        [&](ShardState& st, const Configuration& s, std::size_t) {
          if (st.tracker.respects(s) && cmp.equilibrium(s)) st.found.push_back(s);
          return true;
        });
    found_per_shard.reserve(states.size());
    for (auto& st : states) found_per_shard.push_back(std::move(st.found));
  }

  CanonicalEquilibria out;
  for (auto& found : found_per_shard) {
    for (auto& s : found) {
      out.orbit_sizes.push_back(classes.trivial ? 1
                                                : orbit_size(s.assignment(), classes));
      out.representatives.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace

CanonicalEquilibria enumerate_canonical_equilibria(const Game& game,
                                                   const EnumerationOptions& opts) {
  return enumerate_canonical_with(game, opts, classes_for(game, opts));
}

std::vector<Configuration> enumerate_equilibria(const Game& game,
                                                const EnumerationOptions& opts) {
  const SymmetryClasses classes = classes_for(game, opts);
  CanonicalEquilibria canonical = enumerate_canonical_with(game, opts, classes);
  if (classes.trivial) return std::move(canonical.representatives);

  // Expand every orbit, then merge back into full-space odometer order —
  // the exact output of the legacy walker.
  std::vector<Configuration> expanded;
  for (const auto& rep : canonical.representatives) {
    auto orbit = expand_orbit(rep, classes);
    expanded.insert(expanded.end(), std::make_move_iterator(orbit.begin()),
                    std::make_move_iterator(orbit.end()));
  }
  std::sort(expanded.begin(), expanded.end(),
            [coins = game.num_coins()](const Configuration& a, const Configuration& b) {
              return odometer_rank(a.assignment(), coins) <
                     odometer_rank(b.assignment(), coins);
            });
  return expanded;
}

std::vector<Configuration> enumerate_equilibria(const Game& game,
                                                std::uint64_t max_configs) {
  EnumerationOptions opts;
  opts.max_configs = max_configs;
  return enumerate_equilibria(game, opts);
}

std::vector<Configuration> enumerate_equilibria_scan(const Game& game,
                                                     std::uint64_t max_configs) {
  std::vector<Configuration> out;
  for_each_configuration(game.system_ptr(), max_configs,
                         [&](const Configuration& s) {
                           if (game.respects_access(s) && is_equilibrium(game, s)) {
                             out.push_back(s);
                           }
                           return true;
                         });
  return out;
}

std::vector<Configuration> sample_equilibria(const Game& game, Rng& rng,
                                             std::size_t attempts,
                                             std::uint64_t max_steps_per_attempt) {
  std::vector<Configuration> out;
  // Hash-bucket index: candidates sharing a hash are compared exactly
  // against their bucket only (collision-safe without a full rescan).
  std::unordered_map<std::size_t, std::vector<std::size_t>> buckets;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    // Random start, then random-unstable-miner best responses on the
    // incremental index. Theorem 1 guarantees convergence of any such
    // improving path; the index picks bit-identical moves to the scans.
    Configuration s = random_configuration(game, rng);
    dynamics::BestResponseIndex index(game, s);
    for (std::uint64_t step = 0; step < max_steps_per_attempt; ++step) {
      const std::vector<MinerId>& unstable = index.unstable();
      if (unstable.empty()) break;
      const MinerId p = unstable[rng.pick_index(unstable)];
      const auto target = index.best_of(p);
      GOC_ASSERT(target.has_value(), "unstable miner without a best response");
      s.move(p, *target);
      index.sync(s);
    }
    GOC_ASSERT(index.at_equilibrium(),
               "better-response learning failed to converge within the step cap");
    std::vector<std::size_t>& bucket = buckets[s.hash()];
    bool duplicate = false;
    for (const std::size_t i : bucket) {
      if (out[i] == s) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(out.size());
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace goc
