#include "equilibrium/enumerate.hpp"

#include <unordered_set>

#include "core/enumerate.hpp"
#include "core/generators.hpp"
#include "core/moves.hpp"
#include "util/assert.hpp"

namespace goc {

std::vector<Configuration> enumerate_equilibria(const Game& game,
                                                std::uint64_t max_configs) {
  std::vector<Configuration> out;
  for_each_configuration(game.system_ptr(), max_configs,
                         [&](const Configuration& s) {
                           if (game.respects_access(s) && is_equilibrium(game, s)) {
                             out.push_back(s);
                           }
                           return true;
                         });
  return out;
}

std::vector<Configuration> sample_equilibria(const Game& game, Rng& rng,
                                             std::size_t attempts,
                                             std::uint64_t max_steps_per_attempt) {
  std::vector<Configuration> out;
  // Hashes screen candidates; exact comparison confirms (collision-safe).
  std::unordered_multiset<std::size_t> seen_hashes;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    // Random start, then random-unstable-miner best responses. Theorem 1
    // guarantees convergence of any such improving path.
    Configuration s = random_configuration(game, rng);
    for (std::uint64_t step = 0; step < max_steps_per_attempt; ++step) {
      const std::vector<MinerId> unstable = unstable_miners(game, s);
      if (unstable.empty()) break;
      const MinerId p = unstable[rng.pick_index(unstable)];
      const auto target = best_response(game, s, p);
      GOC_ASSERT(target.has_value(), "unstable miner without a best response");
      s.move(p, *target);
    }
    GOC_ASSERT(is_equilibrium(game, s),
               "better-response learning failed to converge within the step cap");
    bool duplicate = false;
    if (seen_hashes.count(s.hash()) != 0) {
      for (const auto& existing : out) {
        if (existing == s) {
          duplicate = true;
          break;
        }
      }
    }
    if (!duplicate) {
      seen_hashes.insert(s.hash());
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace goc
