#include "equilibrium/better_equilibrium.hpp"

#include <algorithm>
#include <numeric>

#include "core/moves.hpp"
#include "equilibrium/construct.hpp"
#include "util/assert.hpp"

namespace goc {

bool claim7_implies_stable(const Game& game, const Configuration& s, MinerId p,
                           MinerId p_prime) {
  GOC_CHECK_ARG(s.of(p) == s.of(p_prime), "claim 7 requires a shared coin");
  GOC_CHECK_ARG(game.system().power(p) <= game.system().power(p_prime),
                "claim 7 requires m_p <= m_p'");
  if (!is_stable(game, s, p)) return true;  // implication vacuously true
  return is_stable(game, s, p_prime);
}

std::pair<Configuration, Configuration> lemma2_two_configurations(const Game& game) {
  const System& system = game.system();
  GOC_CHECK_ARG(game.access().is_unrestricted(),
                "lemma 2's construction requires the unrestricted policy");
  GOC_CHECK_ARG(system.num_miners() >= 2, "lemma 2 needs at least two miners");
  GOC_CHECK_ARG(system.num_coins() >= 2, "lemma 2 needs at least two coins");

  // Miners in non-increasing power order (stable on id).
  std::vector<std::size_t> order(system.num_miners());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return system.powers()[a] > system.powers()[b];
  });

  // The two heaviest coins (stable on id).
  std::vector<std::uint32_t> coin_order(system.num_coins());
  std::iota(coin_order.begin(), coin_order.end(), 0);
  std::stable_sort(coin_order.begin(), coin_order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return game.rewards()(CoinId(a)) > game.rewards()(CoinId(b));
                   });
  const CoinId c1(coin_order[0]);
  const CoinId c2(coin_order[1]);

  std::vector<CoinId> assign_a(system.num_miners());
  std::vector<CoinId> assign_b(system.num_miners());
  std::vector<Rational> mass_a(system.num_coins(), Rational(0));
  std::vector<Rational> mass_b(system.num_coins(), Rational(0));

  const auto place = [&](std::vector<CoinId>& assign, std::vector<Rational>& mass,
                         std::size_t miner_idx, CoinId coin) {
    assign[miner_idx] = coin;
    mass[coin.value] += system.powers()[miner_idx];
  };

  // s²₁ = ⟨c1, c2⟩ and s²₂ = ⟨c2, c1⟩ over the two largest miners.
  place(assign_a, mass_a, order[0], c1);
  place(assign_a, mass_a, order[1], c2);
  place(assign_b, mass_b, order[0], c2);
  place(assign_b, mass_b, order[1], c1);

  // Claim 5: greedy insertion keeps everyone already placed stable.
  for (std::size_t k = 2; k < order.size(); ++k) {
    const Rational& m = system.powers()[order[k]];
    place(assign_a, mass_a, order[k], best_insertion_coin(game.rewards(), mass_a, m));
    place(assign_b, mass_b, order[k], best_insertion_coin(game.rewards(), mass_b, m));
  }

  return {Configuration(game.system_ptr(), std::move(assign_a)),
          Configuration(game.system_ptr(), std::move(assign_b))};
}

std::optional<BetterEquilibriumWitness> find_better_equilibrium(
    const Game& game, const Configuration& s,
    const std::vector<Configuration>& equilibria) {
  std::optional<BetterEquilibriumWitness> best;
  for (const Configuration& other : equilibria) {
    if (other == s) continue;
    for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
      const MinerId miner(p);
      const Rational before = game.payoff(s, miner);
      const Rational after = game.payoff(other, miner);
      if (after > before &&
          (!best || (after - before) > (best->payoff_after - best->payoff_before))) {
        best = BetterEquilibriumWitness{miner, other, before, after};
      }
    }
  }
  return best;
}

}  // namespace goc
