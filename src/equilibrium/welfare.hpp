#pragma once

#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"

/// \file welfare.hpp
/// Aggregate payoff metrics. Observation 3: at any equilibrium of a game
/// satisfying Assumption 1, the miners' total payoff equals the total coin
/// reward — equivalently, no coin is left unmined. These metrics quantify
/// how far arbitrary configurations fall short, and how unevenly revenue is
/// spread (used by the market simulator and benchmark reports).

namespace goc {

/// Σ_p u_p(s).
Rational total_payoff(const Game& game, const Configuration& s);

/// Σ_{c occupied} F(c) — the reward actually being divided.
Rational distributed_reward(const Game& game, const Configuration& s);

/// Observation 3 predicate: total payoff equals total reward (⟺ every coin
/// is occupied). Holds at every equilibrium under Assumption 1.
bool globally_optimal(const Game& game, const Configuration& s);

/// Per-miner payoffs in miner-id order.
std::vector<Rational> payoff_vector(const Game& game, const Configuration& s);

/// Jain's fairness index over per-unit revenue (payoff/power): 1 when every
/// miner earns the same RPU, → 1/n under maximal concentration. Computed in
/// double (a reporting metric, not a game-theoretic predicate).
double rpu_fairness_index(const Game& game, const Configuration& s);

/// max RPU / min RPU over *occupied* coins, in double; 1.0 at perfectly
/// even revenue. Infinity never occurs (occupied coins have finite RPU).
double rpu_spread(const Game& game, const Configuration& s);

}  // namespace goc
