#include "equilibrium/assumptions.hpp"

#include <atomic>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "core/enumerate.hpp"
#include "core/move_compare.hpp"
#include "core/moves.hpp"
#include "util/assert.hpp"

namespace goc {

std::string NeverAloneViolation::to_string() const {
  std::ostringstream os;
  os << "never-alone violated at " << s.to_string() << " for coin "
     << coin.to_string();
  return os.str();
}

std::string GenericityViolation::to_string() const {
  std::ostringstream os;
  os << "genericity violated: F(" << c.to_string() << ")/" << subset_sum.to_string()
     << " == F(" << c_prime.to_string() << ")/" << subset_sum_prime.to_string();
  return os.str();
}

std::optional<CoinId> never_alone_violation_at(const Game& game,
                                               const Configuration& s) {
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (s.population(coin) > 1) continue;
    bool someone_wants_in = false;
    for (std::uint32_t p = 0; p < game.num_miners() && !someone_wants_in; ++p) {
      const MinerId miner(p);
      if (s.of(miner) == coin) continue;
      if (is_better_response(game, s, miner, coin)) someone_wants_in = true;
    }
    if (!someone_wants_in) return coin;
  }
  return std::nullopt;
}

namespace {

/// `never_alone_violation_at` on the i128 comparator path: no `Rational`
/// temporaries, first-improving early exit per candidate coin.
std::optional<CoinId> never_alone_violation_fast(const Game& game,
                                                 const MoveComparator& cmp,
                                                 const Configuration& s) {
  const std::uint32_t coins = static_cast<std::uint32_t>(game.num_coins());
  const std::uint32_t n = static_cast<std::uint32_t>(game.num_miners());
  for (std::uint32_t c = 0; c < coins; ++c) {
    const CoinId coin(c);
    if (s.population(coin) > 1) continue;
    bool someone_wants_in = false;
    for (std::uint32_t p = 0; p < n && !someone_wants_in; ++p) {
      const MinerId miner(p);
      if (s.of(miner) == coin) continue;
      if (!game.can_mine(miner, coin)) continue;
      if (cmp.improves(s, miner, coin)) someone_wants_in = true;
    }
    if (!someone_wants_in) return coin;
  }
  return std::nullopt;
}

/// `never_alone_violation_at` on the raw integer walk state.
std::optional<CoinId> integer_never_alone_violation(const IntegerGameView& view,
                                                    const IntegerWalkState& st) {
  const std::size_t n = view.power.size();
  const std::uint32_t coins = static_cast<std::uint32_t>(view.reward.size());
  for (std::uint32_t c = 0; c < coins; ++c) {
    if (st.population[c] > 1) continue;
    bool someone_wants_in = false;
    for (std::size_t p = 0; p < n && !someone_wants_in; ++p) {
      const std::uint32_t here = st.digits[p];
      if (here == c) continue;
      if (compare_positive_fractions(view.reward[c], st.mass[c] + view.power[p],
                                     view.reward[here], st.mass[here]) > 0) {
        someone_wants_in = true;
      }
    }
    if (!someone_wants_in) return CoinId(c);
  }
  return std::nullopt;
}

}  // namespace

std::optional<NeverAloneViolation> find_never_alone_violation(
    const Game& game, const EnumerationOptions& opts) {
  const auto count = configuration_count(game.system());
  GOC_CHECK_ARG(count.has_value() && *count <= opts.max_configs,
                "configuration space too large to enumerate");
  const SymmetryClasses classes = classes_for(game, opts);
  const MoveComparator cmp(game);

  // Cross-shard early exit: once shard i holds a witness, shards above i
  // abort; shards below i always finish, so the reported witness is the
  // first violating canonical configuration regardless of thread count.
  std::atomic<std::size_t> found_shard{SIZE_MAX};
  const auto record = [&](std::optional<NeverAloneViolation>& witness,
                          NeverAloneViolation violation, std::size_t shard) {
    witness = std::move(violation);
    atomic_store_min(found_shard, shard);
  };

  std::vector<std::optional<NeverAloneViolation>> states;
  if (cmp.integer_mode() && game.access().is_unrestricted()) {
    const IntegerGameView view = integer_game_view(game);
    states = enumerate_states_integer(
        game, view, classes, opts,
        [](std::size_t) { return std::optional<NeverAloneViolation>(); },
        [&](std::optional<NeverAloneViolation>& witness, const IntegerWalkState& st,
            std::size_t shard) {
          if (found_shard.load(std::memory_order_relaxed) < shard) return false;
          if (const auto coin = integer_never_alone_violation(view, st)) {
            record(witness,
                   NeverAloneViolation{
                       materialize_configuration(game.system_ptr(), st.digits),
                       *coin},
                   shard);
            return false;
          }
          return true;
        });
  } else {
    states = enumerate_states(
        game.system_ptr(), classes, opts,
        [](std::size_t) { return std::optional<NeverAloneViolation>(); },
        [&](std::optional<NeverAloneViolation>& witness, const Configuration& s,
            std::size_t shard) {
          if (found_shard.load(std::memory_order_relaxed) < shard) return false;
          if (const auto coin = never_alone_violation_fast(game, cmp, s)) {
            record(witness, NeverAloneViolation{s, *coin}, shard);
            return false;
          }
          return true;
        });
  }
  for (auto& witness : states) {
    if (witness.has_value()) return witness;
  }
  return std::nullopt;
}

std::optional<NeverAloneViolation> find_never_alone_violation(
    const Game& game, std::uint64_t max_configs) {
  EnumerationOptions opts;
  opts.max_configs = max_configs;
  return find_never_alone_violation(game, opts);
}

std::optional<NeverAloneViolation> find_never_alone_violation_scan(
    const Game& game, std::uint64_t max_configs) {
  std::optional<NeverAloneViolation> violation;
  for_each_configuration(game.system_ptr(), max_configs,
                         [&](const Configuration& s) {
                           if (const auto coin = never_alone_violation_at(game, s)) {
                             violation = NeverAloneViolation{s, *coin};
                             return false;
                           }
                           return true;
                         });
  return violation;
}

std::optional<GenericityViolation> find_genericity_violation(
    const Game& game, std::size_t max_miners) {
  const std::size_t n = game.num_miners();
  GOC_CHECK_ARG(n <= max_miners,
                "genericity check is exponential in the number of miners");

  // All 2^n − 1 nonempty subset sums of the powers.
  std::vector<Rational> sums;
  sums.reserve((static_cast<std::size_t>(1) << n) - 1);
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    // Incremental: sum(mask) = sum(mask without lowest bit) + power(lowest).
    const std::uint64_t low = mask & (~mask + 1);
    const std::uint64_t rest = mask ^ low;
    const std::uint32_t bit = static_cast<std::uint32_t>(__builtin_ctzll(low));
    Rational sum = game.system().power(MinerId(bit));
    if (rest != 0) sum += sums[rest - 1];
    sums.push_back(std::move(sum));
  }

  std::unordered_set<Rational> sum_set(sums.begin(), sums.end());

  for (std::uint32_t ci = 0; ci < game.num_coins(); ++ci) {
    for (std::uint32_t cj = ci + 1; cj < game.num_coins(); ++cj) {
      const CoinId c(ci), c_prime(cj);
      // F(c)/s == F(c')/s'  ⟺  s' == s·F(c')/F(c).
      const Rational ratio = game.rewards()(c_prime) / game.rewards()(c);
      for (const Rational& s : sums) {
        Rational candidate;
        try {
          candidate = s * ratio;
        } catch (const OverflowError&) {
          continue;  // product out of range cannot equal a stored sum
        }
        if (sum_set.count(candidate) != 0) {
          return GenericityViolation{c, c_prime, s, candidate};
        }
      }
    }
  }
  return std::nullopt;
}

bool is_generic(const Game& game, std::size_t max_miners) {
  return !find_genericity_violation(game, max_miners).has_value();
}

}  // namespace goc
