#include "equilibrium/assumptions.hpp"

#include <sstream>
#include <unordered_set>
#include <vector>

#include "core/enumerate.hpp"
#include "core/moves.hpp"
#include "util/assert.hpp"

namespace goc {

std::string NeverAloneViolation::to_string() const {
  std::ostringstream os;
  os << "never-alone violated at " << s.to_string() << " for coin "
     << coin.to_string();
  return os.str();
}

std::string GenericityViolation::to_string() const {
  std::ostringstream os;
  os << "genericity violated: F(" << c.to_string() << ")/" << subset_sum.to_string()
     << " == F(" << c_prime.to_string() << ")/" << subset_sum_prime.to_string();
  return os.str();
}

std::optional<CoinId> never_alone_violation_at(const Game& game,
                                               const Configuration& s) {
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (s.population(coin) > 1) continue;
    bool someone_wants_in = false;
    for (std::uint32_t p = 0; p < game.num_miners() && !someone_wants_in; ++p) {
      const MinerId miner(p);
      if (s.of(miner) == coin) continue;
      if (is_better_response(game, s, miner, coin)) someone_wants_in = true;
    }
    if (!someone_wants_in) return coin;
  }
  return std::nullopt;
}

std::optional<NeverAloneViolation> find_never_alone_violation(
    const Game& game, std::uint64_t max_configs) {
  std::optional<NeverAloneViolation> violation;
  for_each_configuration(game.system_ptr(), max_configs,
                         [&](const Configuration& s) {
                           if (const auto coin = never_alone_violation_at(game, s)) {
                             violation = NeverAloneViolation{s, *coin};
                             return false;
                           }
                           return true;
                         });
  return violation;
}

std::optional<GenericityViolation> find_genericity_violation(
    const Game& game, std::size_t max_miners) {
  const std::size_t n = game.num_miners();
  GOC_CHECK_ARG(n <= max_miners,
                "genericity check is exponential in the number of miners");

  // All 2^n − 1 nonempty subset sums of the powers.
  std::vector<Rational> sums;
  sums.reserve((static_cast<std::size_t>(1) << n) - 1);
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    // Incremental: sum(mask) = sum(mask without lowest bit) + power(lowest).
    const std::uint64_t low = mask & (~mask + 1);
    const std::uint64_t rest = mask ^ low;
    const std::uint32_t bit = static_cast<std::uint32_t>(__builtin_ctzll(low));
    Rational sum = game.system().power(MinerId(bit));
    if (rest != 0) sum += sums[rest - 1];
    sums.push_back(std::move(sum));
  }

  std::unordered_set<Rational> sum_set(sums.begin(), sums.end());

  for (std::uint32_t ci = 0; ci < game.num_coins(); ++ci) {
    for (std::uint32_t cj = ci + 1; cj < game.num_coins(); ++cj) {
      const CoinId c(ci), c_prime(cj);
      // F(c)/s == F(c')/s'  ⟺  s' == s·F(c')/F(c).
      const Rational ratio = game.rewards()(c_prime) / game.rewards()(c);
      for (const Rational& s : sums) {
        Rational candidate;
        try {
          candidate = s * ratio;
        } catch (const OverflowError&) {
          continue;  // product out of range cannot equal a stored sum
        }
        if (sum_set.count(candidate) != 0) {
          return GenericityViolation{c, c_prime, s, candidate};
        }
      }
    }
  }
  return std::nullopt;
}

bool is_generic(const Game& game, std::size_t max_miners) {
  return !find_genericity_violation(game, max_miners).has_value();
}

}  // namespace goc
