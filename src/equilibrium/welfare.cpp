#include "equilibrium/welfare.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace goc {

Rational total_payoff(const Game& game, const Configuration& s) {
  Rational sum(0);
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    sum += game.payoff(s, MinerId(p));
  }
  return sum;
}

Rational distributed_reward(const Game& game, const Configuration& s) {
  Rational sum(0);
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (!s.empty_coin(coin)) sum += game.rewards()(coin);
  }
  return sum;
}

bool globally_optimal(const Game& game, const Configuration& s) {
  return distributed_reward(game, s) == game.rewards().total_reward();
}

std::vector<Rational> payoff_vector(const Game& game, const Configuration& s) {
  std::vector<Rational> out;
  out.reserve(game.num_miners());
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    out.push_back(game.payoff(s, MinerId(p)));
  }
  return out;
}

double rpu_fairness_index(const Game& game, const Configuration& s) {
  // Jain index over x_p = u_p / m_p = RPU of p's coin.
  double sum = 0.0;
  double sum_sq = 0.0;
  const double n = static_cast<double>(game.num_miners());
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    const MinerId miner(p);
    const double x =
        (game.payoff(s, miner) / game.system().power(miner)).to_double();
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (n * sum_sq);
}

double rpu_spread(const Game& game, const Configuration& s) {
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (std::uint32_t c = 0; c < game.num_coins(); ++c) {
    const CoinId coin(c);
    if (s.empty_coin(coin)) continue;
    const double r = game.rpu(s, coin).to_double();
    if (first) {
      lo = hi = r;
      first = false;
    } else {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
  }
  GOC_CHECK_ARG(!first, "rpu_spread of a configuration with no occupied coin");
  return lo == 0.0 ? 1.0 : hi / lo;
}

}  // namespace goc
