#pragma once

#include <vector>

#include "core/configuration.hpp"
#include "core/game.hpp"

/// \file construct.hpp
/// Constructive equilibrium existence (Appendix A, Proposition 3).
///
/// Order miners by non-increasing power and insert them one at a time, each
/// picking the coin maximizing its post-insertion payoff
/// argmax_c F(c)·m/(M_c + m). Claim 6 shows each insertion preserves the
/// stability of everyone already placed, so the result is a pure
/// equilibrium of the full game — for *any* Π, C, F.

namespace goc {

/// Builds the greedy equilibrium. The game's miners may be in any order;
/// internally they are processed in non-increasing power order (stable on
/// miner id) and the result is expressed on the original miner indexing.
/// Ties in the argmax break toward the lowest coin id (deterministic).
Configuration greedy_equilibrium(const Game& game);

/// The greedy placement step of Claim 6: the coin maximizing
/// F(c)·m/(masses[c]+m) for a joining miner of power `m` against the
/// aggregate masses of the already-placed miners. Exposed for the Lemma 2
/// two-equilibria construction and for tests.
CoinId best_insertion_coin(const RewardFunction& rewards,
                           const std::vector<Rational>& masses,
                           const Rational& power);

}  // namespace goc
