#include "pool/pool_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace goc::pool {

PoolSimResult simulate_pool(const std::vector<double>& hashrates,
                            RewardScheme& scheme, const PoolSimOptions& options) {
  GOC_CHECK_ARG(!hashrates.empty(), "pool needs at least one member");
  GOC_CHECK_ARG(options.duration_hours > 0.0, "duration must be positive");
  GOC_CHECK_ARG(options.window_hours > 0.0, "window must be positive");
  GOC_CHECK_ARG(options.shares_per_block >= 1.0,
                "share difficulty must be at least 1");
  double total_rate = 0.0;
  for (const double h : hashrates) {
    GOC_CHECK_ARG(h > 0.0, "hashrates must be positive");
    total_rate += h;
  }

  Rng rng(options.seed);
  scheme.begin(hashrates.size());
  const double block_probability = 1.0 / options.shares_per_block;

  PoolSimResult result;
  result.members.resize(hashrates.size());

  std::vector<RunningStats> window_income(hashrates.size());
  std::vector<double> last_snapshot(hashrates.size(), 0.0);
  double next_window = options.window_hours;

  const auto close_window = [&] {
    for (std::size_t i = 0; i < hashrates.size(); ++i) {
      window_income[i].add(scheme.payouts()[i] - last_snapshot[i]);
      last_snapshot[i] = scheme.payouts()[i];
    }
  };

  double t = rng.exponential(total_rate);
  while (t <= options.duration_hours) {
    while (t > next_window) {
      close_window();
      next_window += options.window_hours;
    }
    // Pick the submitting member ∝ hashrate.
    double ticket = rng.uniform01() * total_rate;
    std::size_t miner = hashrates.size() - 1;
    for (std::size_t i = 0; i < hashrates.size(); ++i) {
      ticket -= hashrates[i];
      if (ticket <= 0.0) {
        miner = i;
        break;
      }
    }
    scheme.on_share(miner);
    ++result.total_shares;
    if (rng.uniform01() < block_probability) {
      scheme.on_block(options.reward_per_block);
      ++result.blocks_found;
    }
    t += rng.exponential(total_rate);
  }
  close_window();

  double pool_income = 0.0;
  for (const double v : scheme.payouts()) pool_income += v;
  for (std::size_t i = 0; i < hashrates.size(); ++i) {
    MemberStats& m = result.members[i];
    m.total_income = scheme.payouts()[i];
    m.mean_window_income = window_income[i].mean();
    m.window_income_cv = m.mean_window_income > 0.0
                             ? window_income[i].stddev() / m.mean_window_income
                             : 0.0;
    if (pool_income > 0.0) {
      const double income_share = m.total_income / pool_income;
      const double hash_share = hashrates[i] / total_rate;
      result.proportionality_error = std::max(
          result.proportionality_error, std::fabs(income_share - hash_share));
    }
  }
  result.operator_balance = scheme.operator_balance();
  return result;
}

std::vector<double> hopping_profile(SchemeKind kind,
                                    const PoolSimOptions& options,
                                    std::size_t num_buckets, Rng& rng,
                                    std::uint64_t rounds) {
  GOC_CHECK_ARG(num_buckets >= 2, "need at least two age buckets");
  // Trick: make the scheme's "members" the round-age buckets — every share
  // is attributed to the bucket of its age at submission, so the scheme's
  // per-member payout totals become per-age payout totals, with all three
  // schemes reused unmodified.
  auto scheme =
      make_scheme(kind, options.reward_per_block, options.shares_per_block);
  scheme->begin(num_buckets);
  const double bucket_width = options.shares_per_block / 4.0;
  const double block_probability = 1.0 / options.shares_per_block;

  std::vector<std::uint64_t> shares_in_bucket(num_buckets, 0);
  std::uint64_t round_age = 0;
  std::uint64_t blocks = 0;
  const std::uint64_t target_shares =
      rounds * static_cast<std::uint64_t>(options.shares_per_block);
  for (std::uint64_t s = 0; s < target_shares || blocks < rounds; ++s) {
    const auto bucket = std::min<std::size_t>(
        num_buckets - 1,
        static_cast<std::size_t>(static_cast<double>(round_age) / bucket_width));
    scheme->on_share(bucket);
    ++shares_in_bucket[bucket];
    if (rng.uniform01() < block_probability) {
      scheme->on_block(options.reward_per_block);
      ++blocks;
      round_age = 0;
    } else {
      ++round_age;
    }
    if (s > 100 * target_shares) break;  // defensive: cannot stall forever
  }

  std::vector<double> profile(num_buckets, 0.0);
  for (std::size_t b = 0; b < num_buckets; ++b) {
    if (shares_in_bucket[b] > 0) {
      profile[b] = scheme->payouts()[b] /
                   static_cast<double>(shares_in_bucket[b]);
    }
  }
  return profile;
}

}  // namespace goc::pool
