#pragma once

#include <vector>

#include "pool/reward_scheme.hpp"
#include "util/rng.hpp"

/// \file pool_sim.hpp
/// Pool income simulation: Poisson share submissions per member, each
/// share a block with probability 1/shares_per_block, rewards distributed
/// by a `RewardScheme`. Measures per-member income across fixed windows
/// ("payday variance") and the classic hopping incentive profile.
///
/// The bridge to the paper: a pool's *aggregate* behaves exactly like a
/// miner of power Σh_i facing the expected-value payoff m·F/M — and the
/// smaller each member's income variance, the better the expected-value
/// model describes individual incentives too. E13 quantifies both.

namespace goc::pool {

struct PoolSimOptions {
  double duration_hours = 24.0 * 30;
  double window_hours = 24.0;        ///< income-variance measurement window
  double shares_per_block = 500.0;   ///< expected shares per block
  double reward_per_block = 100.0;   ///< fiat
  std::uint64_t seed = 13;
};

struct MemberStats {
  double total_income = 0.0;
  double mean_window_income = 0.0;
  /// Coefficient of variation of per-window income (σ/μ) — the "payday
  /// risk" a member experiences. Solo miners have CV ≫ 1 on realistic
  /// horizons; pooled members are near-deterministic.
  double window_income_cv = 0.0;
};

struct PoolSimResult {
  std::vector<MemberStats> members;
  std::uint64_t total_shares = 0;
  std::uint64_t blocks_found = 0;
  double operator_balance = 0.0;
  /// Max |income share − hashrate share| over members: every sound scheme
  /// pays proportionally in expectation, so this shrinks with duration.
  double proportionality_error = 0.0;
};

/// Simulates one pool. `hashrates[i]` is member i's share rate per hour.
PoolSimResult simulate_pool(const std::vector<double>& hashrates,
                            RewardScheme& scheme, const PoolSimOptions& options);

/// The hopping incentive profile of a scheme: expected payout of a single
/// share as a function of its round age (shares already in the round when
/// it was submitted), bucketed by age in units of shares_per_block.
/// Proportional decays with age (early shares are worth more → hop in at
/// round start, leave when the round grows long); PPS/PPLNS are flat.
/// Returned buckets: [0, 0.25, 0.5, …)·shares_per_block, `num_buckets`
/// wide, each the mean payout of shares submitted at that age.
std::vector<double> hopping_profile(SchemeKind kind,
                                    const PoolSimOptions& options,
                                    std::size_t num_buckets, Rng& rng,
                                    std::uint64_t rounds = 4000);

}  // namespace goc::pool
