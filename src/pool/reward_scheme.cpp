#include "pool/reward_scheme.hpp"

namespace goc::pool {

void ProportionalScheme::begin(std::size_t num_members) {
  GOC_CHECK_ARG(num_members >= 1, "pool needs at least one member");
  payouts_.assign(num_members, 0.0);
  round_shares_.assign(num_members, 0);
  round_total_ = 0;
}

void ProportionalScheme::on_share(std::size_t miner) {
  GOC_CHECK_ARG(miner < round_shares_.size(), "unknown member");
  ++round_shares_[miner];
  ++round_total_;
}

void ProportionalScheme::on_block(double reward) {
  GOC_CHECK_ARG(reward >= 0.0, "negative block reward");
  if (round_total_ > 0) {
    const double per_share = reward / static_cast<double>(round_total_);
    for (std::size_t i = 0; i < payouts_.size(); ++i) {
      payouts_[i] += per_share * static_cast<double>(round_shares_[i]);
      round_shares_[i] = 0;
    }
  }
  round_total_ = 0;
}

PpsScheme::PpsScheme(double reward_per_block, double shares_per_block,
                     double fee)
    : per_share_(reward_per_block * (1.0 - fee) / shares_per_block) {
  GOC_CHECK_ARG(reward_per_block > 0.0, "reward must be positive");
  GOC_CHECK_ARG(shares_per_block > 0.0, "share difficulty must be positive");
  GOC_CHECK_ARG(fee >= 0.0 && fee < 1.0, "fee must lie in [0,1)");
}

void PpsScheme::begin(std::size_t num_members) {
  GOC_CHECK_ARG(num_members >= 1, "pool needs at least one member");
  payouts_.assign(num_members, 0.0);
  operator_balance_ = 0.0;
}

void PpsScheme::on_share(std::size_t miner) {
  GOC_CHECK_ARG(miner < payouts_.size(), "unknown member");
  payouts_[miner] += per_share_;
  operator_balance_ -= per_share_;
}

void PpsScheme::on_block(double reward) {
  GOC_CHECK_ARG(reward >= 0.0, "negative block reward");
  operator_balance_ += reward;
}

PplnsScheme::PplnsScheme(std::size_t window) : window_(window) {
  GOC_CHECK_ARG(window >= 1, "PPLNS window must be positive");
}

void PplnsScheme::begin(std::size_t num_members) {
  GOC_CHECK_ARG(num_members >= 1, "pool needs at least one member");
  payouts_.assign(num_members, 0.0);
  recent_.clear();
}

void PplnsScheme::on_share(std::size_t miner) {
  GOC_CHECK_ARG(miner < payouts_.size(), "unknown member");
  recent_.push_back(miner);
  if (recent_.size() > window_) recent_.pop_front();
}

void PplnsScheme::on_block(double reward) {
  GOC_CHECK_ARG(reward >= 0.0, "negative block reward");
  if (recent_.empty()) return;
  const double per_share = reward / static_cast<double>(recent_.size());
  for (const std::size_t miner : recent_) payouts_[miner] += per_share;
}

std::unique_ptr<RewardScheme> make_scheme(SchemeKind kind,
                                          double reward_per_block,
                                          double shares_per_block) {
  switch (kind) {
    case SchemeKind::kProportional:
      return std::make_unique<ProportionalScheme>();
    case SchemeKind::kPps:
      return std::make_unique<PpsScheme>(reward_per_block, shares_per_block,
                                         /*fee=*/0.05);
    case SchemeKind::kPplns:
      return std::make_unique<PplnsScheme>(
          static_cast<std::size_t>(shares_per_block));
  }
  GOC_ASSERT(false, "unknown scheme kind");
  return nullptr;
}

}  // namespace goc::pool
