#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/assert.hpp"

/// \file reward_scheme.hpp
/// Mining-pool reward schemes.
///
/// The paper's players are "miners with power m_p"; in practice these are
/// *pools* — aggregates that smooth the block lottery so members earn
/// near-deterministic income proportional to contributed hashrate. That
/// smoothing is exactly what justifies the paper's expected-value payoff
/// u_p = m_p·F(c)/M_c (cf. its ref [30], Schrijvers et al. on pool reward
/// functions). This module implements the three classic schemes:
///
///  * **Proportional** — each block's reward is split across the shares of
///    the current round; simple, but vulnerable to pool hopping (early
///    shares in a round are worth more in expectation).
///  * **PPS** (pay-per-share) — a fixed payout per share, immediately; the
///    operator absorbs all variance in exchange for a fee.
///  * **PPLNS** (pay-per-last-N-shares) — each block's reward is split
///    over the last N shares regardless of round boundaries; hop-resistant.
///
/// Shares are unit-difficulty: a share is a block with probability
/// 1/shares_per_block. Experiment E13 (`bench_pool_schemes`) quantifies
/// the variance reduction and hopping incentives.

namespace goc::pool {

/// Distributes block rewards over submitted shares. Stateful; one instance
/// per pool run.
class RewardScheme {
 public:
  virtual ~RewardScheme() = default;

  /// Must be called once before use with the member count.
  virtual void begin(std::size_t num_members) = 0;

  /// Member `miner` submitted one unit-difficulty share.
  virtual void on_share(std::size_t miner) = 0;

  /// The pool found a block worth `reward`; the scheme credits members.
  virtual void on_block(double reward) = 0;

  /// Cumulative credited income per member.
  virtual const std::vector<double>& payouts() const = 0;

  /// Operator profit-and-loss (PPS absorbs variance; 0 for others).
  virtual double operator_balance() const { return 0.0; }

  virtual std::string name() const = 0;
};

/// Proportional: reward split over the current round's shares; the round
/// resets at each block.
class ProportionalScheme final : public RewardScheme {
 public:
  void begin(std::size_t num_members) override;
  void on_share(std::size_t miner) override;
  void on_block(double reward) override;
  const std::vector<double>& payouts() const override { return payouts_; }
  std::string name() const override { return "proportional"; }

 private:
  std::vector<double> payouts_;
  std::vector<std::uint64_t> round_shares_;
  std::uint64_t round_total_ = 0;
};

/// PPS: each share pays reward_per_block·(1−fee)/shares_per_block at once;
/// block rewards accrue to the operator.
class PpsScheme final : public RewardScheme {
 public:
  /// `shares_per_block` is the expected shares per block (the share
  /// difficulty ratio); `fee` in [0,1).
  PpsScheme(double reward_per_block, double shares_per_block, double fee);

  void begin(std::size_t num_members) override;
  void on_share(std::size_t miner) override;
  void on_block(double reward) override;
  const std::vector<double>& payouts() const override { return payouts_; }
  double operator_balance() const override { return operator_balance_; }
  std::string name() const override { return "pps"; }

 private:
  double per_share_;
  std::vector<double> payouts_;
  double operator_balance_ = 0.0;
};

/// PPLNS: reward split evenly over the last `window` shares (across round
/// boundaries).
class PplnsScheme final : public RewardScheme {
 public:
  explicit PplnsScheme(std::size_t window);

  void begin(std::size_t num_members) override;
  void on_share(std::size_t miner) override;
  void on_block(double reward) override;
  const std::vector<double>& payouts() const override { return payouts_; }
  std::string name() const override { return "pplns"; }

 private:
  std::size_t window_;
  std::deque<std::size_t> recent_;  // miner ids of the last ≤ window shares
  std::vector<double> payouts_;
};

enum class SchemeKind { kProportional, kPps, kPplns };

/// Factory. `reward_per_block`/`shares_per_block` parameterize PPS (5% fee)
/// and size the PPLNS window (= shares_per_block, a common choice).
std::unique_ptr<RewardScheme> make_scheme(SchemeKind kind,
                                          double reward_per_block,
                                          double shares_per_block);

}  // namespace goc::pool
