#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "replay/replay.hpp"

/// \file checkpoint.hpp
/// Crash-safe trajectory-batch checkpoints.
///
/// A Monte Carlo batch's replica rows are pure functions of
/// `(root_seed, replica)` and the aggregation runs in replica order, so
/// the *entire* recoverable state of a batch is its completed-row prefix.
/// A checkpoint persists exactly that — header (seed, scenario config
/// hash, metric names, requested ceiling, adaptive flag), one frame per
/// completed replica row, the prefix-Welford state per metric, and a
/// footer with the prefix `values_hash` — in the CRC32-framed format of
/// replay.hpp, rewritten atomically at every wave boundary.
///
/// Resume contract (`sim::run_trajectory_batch`): loading a checkpoint
/// skips the completed prefix and re-enters the wave loop at the same
/// boundaries; because waves, seeds and stop checks are pure functions of
/// the prefix, the resumed batch is **byte-identical** to an
/// uninterrupted run — same means, variances, `values_hash` and (for
/// adaptive batches) the same chosen R, at any `--threads`. A corrupted
/// checkpoint salvages its longest valid row prefix (losing at most one
/// wave); a checkpoint whose header does not match the live batch throws
/// `ReplayError::kHeaderMismatch` rather than silently mixing scenarios.

namespace goc::replay {

/// Checkpointing knobs for `sim::TrajectoryBatchOptions`.
struct CheckpointOptions {
  /// Artifact path; written atomically (tmp + fsync + rename).
  std::string path;
  /// Fixed-R batches persist every `interval` completed replicas;
  /// adaptive batches persist at every wave boundary (the wave already is
  /// the natural unit of completed work). Must be >= 1.
  std::size_t interval = 16;
  /// Load `path` (salvaging if damaged) and skip its completed prefix
  /// when the file exists; false overwrites unconditionally.
  bool resume = true;
  /// Test/observability hook, called on the batch's serial control thread
  /// after each successful checkpoint write with the completed-replica
  /// count — the fault-injection harness raises SIGKILL in here.
  std::function<void(std::size_t completed)> on_write;
};

/// Per-metric prefix-Welford state (count travels in the checkpoint's
/// `completed`). Mean/m2 are byte-exact recomputable from the rows; they
/// are stored anyway so `goc-replay info` can describe an artifact without
/// re-running anything, and loads cross-check them against the rows.
struct WelfordState {
  double mean = 0.0;
  double m2 = 0.0;
};

/// The in-memory image of a batch checkpoint.
struct BatchCheckpoint {
  std::uint64_t root_seed = 0;
  /// Caller-supplied scenario identity (`TrajectoryBatchOptions::
  /// config_hash`); 0 means "unchecked".
  std::uint64_t config_hash = 0;
  std::vector<std::string> metric_names;
  /// Replica ceiling (fixed R, or the stopping rule's max_replicas).
  std::size_t replicas_requested = 0;
  /// Whether a stopping rule governs the batch (a fixed-R checkpoint must
  /// not resume an adaptive batch or vice versa).
  bool adaptive = false;
  /// Completed-row prefix length.
  std::size_t completed = 0;
  /// completed × metric_names.size(), replica-major.
  std::vector<double> values;

  /// Prefix-Welford state over `values`, in replica order (recomputed,
  /// not cached — byte-exact by construction).
  std::vector<WelfordState> welford() const;

  /// FNV-1a over the raw bits of `values` (the prefix `values_hash`).
  std::uint64_t values_hash() const noexcept;

  /// Serializes to a complete artifact image.
  std::string to_bytes() const;

  /// Atomic write of `to_bytes()` to `path`.
  void save(const std::string& path) const;

  /// Parses an artifact image. Strict mode (`salvage == false`) throws a
  /// typed `ReplayException` on any defect, including rows that disagree
  /// with the stored Welford state or footer hash. Salvage mode keeps the
  /// longest contiguous valid row prefix (frames after the first defect —
  /// and any row frame out of sequence — are dropped) and ignores a
  /// missing or stale Welford/footer; it still throws on bad magic,
  /// version mismatch, or a damaged header frame, because an artifact
  /// without a trusted header cannot be bound to a scenario.
  static BatchCheckpoint from_bytes(std::string_view bytes, bool salvage);

  /// `from_bytes(read_file_bytes(path), salvage)`.
  static BatchCheckpoint load(const std::string& path, bool salvage);
};

}  // namespace goc::replay
