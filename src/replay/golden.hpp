#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trajectory.hpp"

/// \file golden.hpp
/// Golden replay recordings — committed regression anchors for the
/// stochastic simulators.
///
/// A golden is a strict-mode artifact (replay.hpp framing) capturing a
/// small, named scenario end to end: per-replica metric rows (the exact
/// values a Monte Carlo batch would aggregate — the row helpers are shared
/// with the batch adapters), full-trajectory FNV hashes, and periodic
/// simulator snapshots (chain difficulty/hashrate timeline, market epoch
/// prices/weights, fig1 coupled series). `goc-replay record` writes one,
/// `goc-replay verify` re-runs the scenario named in the header and
/// compares frame by frame — so a committed golden catches any silent
/// behavioural drift, including across compilers (CI verifies the same
/// bytes under gcc and clang; the build uses no -march/-ffast-math flags,
/// so IEEE-754 evaluation is identical).

namespace goc::replay {

/// What to record. The scenario workloads themselves are fixed by name
/// (documented in golden.cpp) — a golden's identity is (scenario, seed,
/// replicas, snapshot_stride), all stamped into the header.
struct GoldenOptions {
  std::string scenario = "chain";  ///< one of `golden_scenarios()`
  std::uint64_t seed = 2021;       ///< root of the per-replica derivation
  std::size_t replicas = 4;
  /// Every Nth timeline/epoch point becomes a snapshot frame (>= 1).
  std::size_t snapshot_stride = 8;
};

/// The recordable scenario names: {"chain", "market", "fig1"}.
const std::vector<std::string>& golden_scenarios();

/// FNV-1a identity of a golden's configuration (scenario name + seed +
/// replicas + stride + format version) — stamped into the header so verify
/// can reject an option drift before comparing frames.
std::uint64_t golden_config_hash(const GoldenOptions& options);

/// Runs the scenario and serializes the complete artifact image.
std::string record_golden(const GoldenOptions& options);

/// `record_golden` + atomic write.
void record_golden_file(const GoldenOptions& options, const std::string& path);

/// Outcome of `verify_golden_file`.
struct VerifyReport {
  bool ok = false;
  std::string scenario;
  std::size_t frames = 0;   ///< frames in the artifact
  std::string detail;       ///< first divergence / defect description
};

/// Strict-reads `path`, re-runs the scenario its header names with the
/// header's options, and compares the regenerated image frame by frame.
/// Never throws for artifact defects — they come back as `ok == false`
/// with the typed error rendered into `detail` (a verify CLI wants an
/// exit code, not a stack trace).
VerifyReport verify_golden_file(const std::string& path);

/// Human-oriented artifact summary (`goc-replay info`).
struct ArtifactInfo {
  std::string kind;        ///< header kind tag ("", if headerless)
  std::string scenario;    ///< goldens only
  std::uint64_t seed = 0;
  std::uint64_t config_hash = 0;
  std::size_t frames = 0;
  std::size_t bytes = 0;
  bool salvaged = false;
  std::size_t salvaged_bytes = 0;
  std::string salvage_reason;
  /// One "count × type-name" entry per distinct frame type, file order.
  std::vector<std::string> frame_counts;
};

/// Opens `path` (salvage mode by default — info should describe damaged
/// files, not refuse them) and summarizes it.
ArtifactInfo inspect_file(const std::string& path, bool salvage = true);

/// Renders an ArtifactInfo as the `goc-replay info` text block.
std::string render_info(const ArtifactInfo& info);

// ------------------------------------------------------ crash-demo batch
// The workload behind `goc-replay batch` and the fault-injection tests: a
// small fixed chain-batch scenario with checkpointing, plus an optional
// suicide switch that SIGKILLs the process from the checkpoint hook — the
// harness forks these as children and corrupts/resumes what they left.

struct CrashBatchOptions {
  std::uint64_t seed = 7;
  std::size_t replicas = 24;
  std::size_t interval = 4;  ///< checkpoint interval (replicas per write)
  std::size_t threads = 1;
  std::string checkpoint_path;
  /// 0 = run to completion; N >= 1 = raise SIGKILL inside the Nth
  /// checkpoint write hook (after the file hit disk).
  std::size_t kill_after = 0;
  /// Run under a stopping rule instead of fixed R (exercises the adaptive
  /// resume path; `replicas` then serves as max_replicas).
  bool adaptive = false;
};

/// The config hash `run_crash_demo_batch` stamps into its checkpoints.
std::uint64_t crash_demo_config_hash(const CrashBatchOptions& options);

/// Runs (or resumes) the crash-demo batch. Deterministic: two calls with
/// the same options — interrupted or not, at any thread count — produce
/// `deterministic_equals` results.
sim::TrajectoryBatchResult run_crash_demo_batch(
    const CrashBatchOptions& options);

}  // namespace goc::replay
