#include "replay/checkpoint.hpp"

#include <bit>

#include "io/serialize.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace goc::replay {
namespace {

/// Header payload: kind tag + identity fields. The kind string keeps
/// checkpoints and golden recordings (golden.cpp) distinguishable even
/// though they share the frame format.
constexpr const char* kCheckpointKind = "trajectory-checkpoint";

}  // namespace

std::vector<WelfordState> BatchCheckpoint::welford() const {
  const std::size_t metrics = metric_names.size();
  std::vector<WelfordState> state(metrics);
  for (std::size_t r = 0; r < completed; ++r) {
    for (std::size_t m = 0; m < metrics; ++m) {
      const double x = values[r * metrics + m];
      WelfordState& s = state[m];
      const double delta = x - s.mean;
      s.mean += delta / static_cast<double>(r + 1);
      s.m2 += delta * (x - s.mean);
    }
  }
  return state;
}

std::uint64_t BatchCheckpoint::values_hash() const noexcept {
  std::uint64_t h = fnv::kOffset;
  for (const double v : values) fnv::mix_bytes(h, v);
  return h;
}

std::string BatchCheckpoint::to_bytes() const {
  GOC_CHECK_ARG(!metric_names.empty(), "checkpoint needs metric names");
  GOC_CHECK_ARG(values.size() == completed * metric_names.size(),
                "checkpoint value matrix arity mismatch");
  Writer writer;

  ByteWriter header;
  header.str(kCheckpointKind);
  header.u64(root_seed);
  header.u64(config_hash);
  header.u8(adaptive ? 1 : 0);
  header.u64(replicas_requested);
  header.u32(static_cast<std::uint32_t>(metric_names.size()));
  for (const std::string& name : metric_names) header.str(name);
  writer.append(RecordType::kBatchHeader, header);

  const std::size_t metrics = metric_names.size();
  for (std::size_t r = 0; r < completed; ++r) {
    ByteWriter row;
    row.u64(r);
    for (std::size_t m = 0; m < metrics; ++m) row.f64(values[r * metrics + m]);
    writer.append(RecordType::kReplicaRow, row);
  }

  ByteWriter prefix;
  prefix.u64(completed);
  for (const WelfordState& s : welford()) {
    prefix.f64(s.mean);
    prefix.f64(s.m2);
  }
  writer.append(RecordType::kWelford, prefix);

  ByteWriter footer;
  footer.u64(completed);
  footer.u64(values_hash());
  writer.append(RecordType::kFooter, footer);

  return writer.bytes();
}

void BatchCheckpoint::save(const std::string& path) const {
  try {
    io::atomic_write_file(to_bytes(), path);
  } catch (const std::runtime_error& e) {
    throw ReplayException(ReplayError::kIo, e.what());
  }
}

BatchCheckpoint BatchCheckpoint::from_bytes(std::string_view bytes,
                                            bool salvage) {
  const Reader reader = Reader::from_bytes(bytes, salvage);
  const std::vector<Frame>& frames = reader.frames();
  if (frames.empty() || frames.front().type != RecordType::kBatchHeader) {
    // Even salvage cannot proceed: rows without a header cannot be bound
    // to any scenario.
    throw ReplayException(ReplayError::kMalformed,
                          "checkpoint has no leading batch-header frame");
  }

  BatchCheckpoint cp;
  {
    ByteReader header(frames.front().payload);
    const std::string kind = header.str();
    if (kind != kCheckpointKind) {
      throw ReplayException(ReplayError::kHeaderMismatch,
                            "artifact is a '" + kind +
                                "', not a trajectory checkpoint");
    }
    cp.root_seed = header.u64();
    cp.config_hash = header.u64();
    cp.adaptive = header.u8() != 0;
    cp.replicas_requested = header.u64();
    const std::uint32_t metrics = header.u32();
    if (metrics == 0 || metrics > 4096) {
      throw ReplayException(ReplayError::kMalformed,
                            "implausible metric count in header");
    }
    cp.metric_names.reserve(metrics);
    for (std::uint32_t m = 0; m < metrics; ++m) {
      cp.metric_names.push_back(header.str());
    }
  }

  const std::size_t metrics = cp.metric_names.size();
  bool saw_welford = false;
  bool saw_footer = false;
  std::vector<WelfordState> stored_welford;
  std::uint64_t stored_welford_count = 0;
  std::uint64_t footer_completed = 0;
  std::uint64_t footer_hash = 0;
  const auto reject = [&](const char* what) {
    // A frame that parsed (CRC-clean) but contradicts the stream. In
    // salvage mode the row prefix gathered so far is still good — drop
    // only the offending frame and everything after it.
    if (!salvage) throw ReplayException(ReplayError::kMalformed, what);
    return false;  // signals "stop scanning frames"
  };
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const Frame& frame = frames[i];
    try {
      if (frame.type == RecordType::kReplicaRow) {
        ByteReader row(frame.payload);
        const std::uint64_t r = row.u64();
        if (r != cp.completed) {
          if (!reject("replica-row frame out of sequence")) break;
        }
        if (row.remaining() != metrics * 8) {
          if (!reject("replica-row arity mismatch")) break;
        }
        for (std::size_t m = 0; m < metrics; ++m) {
          cp.values.push_back(row.f64());
        }
        ++cp.completed;
      } else if (frame.type == RecordType::kWelford) {
        ByteReader prefix(frame.payload);
        stored_welford_count = prefix.u64();
        if (prefix.remaining() != metrics * 16) {
          if (!reject("welford arity mismatch")) break;
        }
        stored_welford.resize(metrics);
        for (std::size_t m = 0; m < metrics; ++m) {
          stored_welford[m].mean = prefix.f64();
          stored_welford[m].m2 = prefix.f64();
        }
        saw_welford = true;
      } else if (frame.type == RecordType::kFooter) {
        ByteReader footer(frame.payload);
        footer_completed = footer.u64();
        footer_hash = footer.u64();
        saw_footer = true;
      } else {
        if (!reject("unexpected frame type in checkpoint")) break;
      }
    } catch (const ReplayException&) {
      // A CRC-clean frame whose payload still fails to parse (possible
      // only via a checksum collision) ends the salvageable prefix.
      if (!salvage) throw;
      break;
    }
  }

  // Cross-checks. In strict mode a stale Welford/footer is corruption; in
  // salvage mode the rows are the ground truth and the summaries are
  // advisory (a salvaged prefix legitimately predates them).
  if (!salvage) {
    if (!saw_welford || !saw_footer) {
      throw ReplayException(ReplayError::kTruncated,
                            "checkpoint missing welford/footer frames");
    }
    if (stored_welford_count != cp.completed ||
        footer_completed != cp.completed || footer_hash != cp.values_hash()) {
      throw ReplayException(ReplayError::kMalformed,
                            "checkpoint summary frames disagree with rows");
    }
    const std::vector<WelfordState> recomputed = cp.welford();
    for (std::size_t m = 0; m < metrics; ++m) {
      if (std::bit_cast<std::uint64_t>(recomputed[m].mean) !=
              std::bit_cast<std::uint64_t>(stored_welford[m].mean) ||
          std::bit_cast<std::uint64_t>(recomputed[m].m2) !=
              std::bit_cast<std::uint64_t>(stored_welford[m].m2)) {
        throw ReplayException(ReplayError::kMalformed,
                              "stored welford state disagrees with rows");
      }
    }
  }
  return cp;
}

BatchCheckpoint BatchCheckpoint::load(const std::string& path, bool salvage) {
  return from_bytes(read_file_bytes(path), salvage);
}

}  // namespace goc::replay
