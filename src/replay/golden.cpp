#include "replay/golden.hpp"

#include <algorithm>
#include <csignal>
#include <sstream>

#include "chain/chain_sim.hpp"
#include "chain/difficulty.hpp"
#include "engine/sweep.hpp"
#include "market/fig1_replay.hpp"
#include "market/scenario.hpp"
#include "io/serialize.hpp"
#include "replay/checkpoint.hpp"
#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace goc::replay {
namespace {

constexpr const char* kGoldenKind = "golden-recording";

// ----------------------------------------------------- scenario workloads
// Fixed by name; changing a workload invalidates every committed golden of
// that scenario, so treat these like on-disk format: append new scenarios,
// never edit existing ones.

/// "chain": 12 heterogeneous miners racing a heavy/light chain pair under
/// better-response migration, 240 simulated hours, full timeline on.
chain::MultiChainSimulator make_chain_scenario(std::uint64_t seed) {
  std::vector<chain::ChainSpec> chains;
  chains.push_back(chain::ChainSpec{
      "heavy", 600.0, 1.0 / 6.0, 30.0,
      std::make_unique<chain::FixedWindowRetarget>(72, 1.0 / 6.0)});
  chains.push_back(chain::ChainSpec{
      "light", 600.0, 1.0 / 6.0, 10.0,
      std::make_unique<chain::FixedWindowRetarget>(72, 1.0 / 6.0)});
  std::vector<double> powers;
  for (std::size_t i = 0; i < 12; ++i) {
    powers.push_back(5.0 + static_cast<double>(i % 4) * 7.0);
  }
  chain::ChainSimOptions options;
  options.duration_hours = 240.0;
  options.decision_interval_hours = 1.0;
  options.record_timeline = true;
  options.seed = seed;
  return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                    options);
}

/// "market": the fork-flip episode at epoch-market fidelity.
market::Scenario make_market_scenario() {
  market::ForkFlipParams params;
  params.miners = 32;
  return market::fork_flip_prototype(params);
}

/// "fig1": the coupled chain-level replay, shrunk to an 8-day horizon.
market::Fig1ReplayParams make_fig1_scenario(std::uint64_t seed) {
  market::Fig1ReplayParams params;
  params.miners = 16;
  params.days = 8.0;
  params.shock_day = 3.0;
  params.revert_day = 5.0;
  params.seed = seed;
  return params;
}

// ------------------------------------------------------- frame recording

void append_row(Writer& writer, std::size_t r, const std::vector<double>& row,
                std::uint64_t& rows_hash) {
  ByteWriter payload;
  payload.u64(r);
  for (const double v : row) {
    payload.f64(v);
    fnv::mix_bytes(rows_hash, v);
  }
  writer.append(RecordType::kReplicaRow, payload);
}

void append_trajectory_hash(Writer& writer, std::size_t r, std::uint64_t hash) {
  ByteWriter payload;
  payload.u64(r);
  payload.u64(hash);
  writer.append(RecordType::kTrajectoryHash, payload);
}

void record_chain_replica(Writer& writer, std::size_t r, std::uint64_t seed,
                          std::size_t stride, std::uint64_t& rows_hash) {
  chain::MultiChainSimulator sim = make_chain_scenario(seed);
  const chain::ChainSimResult result = sim.run();
  append_row(writer, r, sim::chain_replica_metrics(result), rows_hash);
  append_trajectory_hash(writer, r, sim::chain_result_hash(result));
  for (std::size_t i = 0; i < result.timeline.size(); i += stride) {
    const chain::TimelinePoint& point = result.timeline[i];
    ByteWriter payload;
    payload.u64(r);
    payload.u64(i);
    payload.f64(point.t_hours);
    payload.u32(static_cast<std::uint32_t>(point.difficulty.size()));
    for (std::size_t c = 0; c < point.difficulty.size(); ++c) {
      payload.f64(point.difficulty[c]);
      payload.f64(point.hashrate[c]);
      payload.u64(point.blocks[c]);
      payload.f64(point.reward_fiat[c]);
    }
    writer.append(RecordType::kChainSnapshot, payload);
  }
}

void record_market_replica(Writer& writer, std::size_t r, std::uint64_t seed,
                           std::size_t stride, std::uint64_t& rows_hash) {
  static const market::Scenario scenario = make_market_scenario();
  market::MarketSimulator sim = scenario.make_simulator(seed);
  const std::vector<market::EpochRecord> records = sim.run();
  append_row(writer, r, sim::market_replica_metrics(records), rows_hash);
  append_trajectory_hash(writer, r, sim::market_records_hash(records));
  for (std::size_t i = 0; i < records.size(); i += stride) {
    const market::EpochRecord& record = records[i];
    ByteWriter payload;
    payload.u64(r);
    payload.u64(i);
    payload.f64(record.t_hours);
    payload.u32(static_cast<std::uint32_t>(record.prices.size()));
    for (std::size_t c = 0; c < record.prices.size(); ++c) {
      payload.f64(record.prices[c]);
      payload.f64(record.weights[c]);
      payload.f64(record.hashrate_share[c]);
    }
    payload.u64(record.br_steps);
    payload.u8(record.at_equilibrium ? 1 : 0);
    writer.append(RecordType::kMarketSnapshot, payload);
  }
}

void record_fig1_replica(Writer& writer, std::size_t r, std::uint64_t seed,
                         std::size_t stride, std::uint64_t& rows_hash) {
  const market::Fig1ReplayResult result =
      market::run_fig1_replay(make_fig1_scenario(seed));
  append_row(writer, r, market::fig1_replica_metrics(result), rows_hash);
  append_trajectory_hash(writer, r, market::fig1_result_hash(result));
  for (std::size_t i = 0; i < result.series.size(); i += stride) {
    const market::Fig1ReplayPoint& point = result.series[i];
    ByteWriter payload;
    payload.u64(r);
    payload.u64(i);
    payload.f64(point.t_hours);
    payload.f64(point.major_price);
    payload.f64(point.minor_price);
    payload.f64(point.major_hash);
    payload.f64(point.minor_hash);
    payload.f64(point.minor_difficulty);
    writer.append(RecordType::kFig1Snapshot, payload);
  }
}

const std::vector<std::string>& scenario_metrics(const std::string& scenario) {
  if (scenario == "chain") return sim::chain_batch_metrics();
  if (scenario == "market") return sim::market_batch_metrics();
  if (scenario == "fig1") return market::fig1_replay_metrics();
  throw std::invalid_argument("unknown golden scenario: " + scenario);
}

}  // namespace

const std::vector<std::string>& golden_scenarios() {
  static const std::vector<std::string> kNames = {"chain", "market", "fig1"};
  return kNames;
}

std::uint64_t golden_config_hash(const GoldenOptions& options) {
  std::uint64_t h = fnv::kOffset;
  for (const char ch : options.scenario) {
    fnv::mix_bytes(h, static_cast<std::uint64_t>(
                          static_cast<std::uint8_t>(ch)));
  }
  fnv::mix_bytes(h, options.seed);
  fnv::mix_bytes(h, static_cast<std::uint64_t>(options.replicas));
  fnv::mix_bytes(h, static_cast<std::uint64_t>(options.snapshot_stride));
  fnv::mix_bytes(h, static_cast<std::uint64_t>(kFormatVersion));
  return h;
}

std::string record_golden(const GoldenOptions& options) {
  const std::vector<std::string>& metrics = scenario_metrics(options.scenario);
  GOC_CHECK_ARG(options.replicas >= 1, "a golden needs at least one replica");
  GOC_CHECK_ARG(options.snapshot_stride >= 1,
                "snapshot stride must be >= 1");

  Writer writer;
  ByteWriter header;
  header.str(kGoldenKind);
  header.str(options.scenario);
  header.u64(options.seed);
  header.u64(golden_config_hash(options));
  header.u64(options.replicas);
  header.u64(options.snapshot_stride);
  header.u32(static_cast<std::uint32_t>(metrics.size()));
  for (const std::string& name : metrics) header.str(name);
  writer.append(RecordType::kBatchHeader, header);

  // Replicas run serially in index order with the batch engine's seed
  // derivation, so row r here is bit-identical to row r of a Monte Carlo
  // batch over the same scenario at any thread count.
  std::uint64_t rows_hash = fnv::kOffset;
  for (std::size_t r = 0; r < options.replicas; ++r) {
    const std::uint64_t seed = engine::task_seed(options.seed, r, 0);
    if (options.scenario == "chain") {
      record_chain_replica(writer, r, seed, options.snapshot_stride, rows_hash);
    } else if (options.scenario == "market") {
      record_market_replica(writer, r, seed, options.snapshot_stride,
                            rows_hash);
    } else {
      record_fig1_replica(writer, r, seed, options.snapshot_stride, rows_hash);
    }
  }

  ByteWriter footer;
  footer.u64(options.replicas);
  footer.u64(rows_hash);
  writer.append(RecordType::kFooter, footer);
  return writer.bytes();
}

void record_golden_file(const GoldenOptions& options, const std::string& path) {
  try {
    io::atomic_write_file(record_golden(options), path);
  } catch (const std::runtime_error& e) {
    throw ReplayException(ReplayError::kIo, e.what());
  }
}

VerifyReport verify_golden_file(const std::string& path) {
  VerifyReport report;
  try {
    const std::string bytes = read_file_bytes(path);
    const Reader reader = Reader::from_bytes(bytes, /*salvage=*/false);
    const std::vector<Frame>& frames = reader.frames();
    report.frames = frames.size();
    if (frames.empty() || frames.front().type != RecordType::kBatchHeader) {
      report.detail = "artifact has no leading header frame";
      return report;
    }

    GoldenOptions options;
    std::uint64_t stored_config = 0;
    {
      ByteReader header(frames.front().payload);
      const std::string kind = header.str();
      if (kind != kGoldenKind) {
        report.detail = "artifact is a '" + kind + "', not a golden recording";
        return report;
      }
      options.scenario = header.str();
      options.seed = header.u64();
      stored_config = header.u64();
      options.replicas = header.u64();
      options.snapshot_stride = header.u64();
    }
    report.scenario = options.scenario;
    const auto& known = golden_scenarios();
    if (std::find(known.begin(), known.end(), options.scenario) ==
        known.end()) {
      report.detail = "unknown scenario '" + options.scenario + "'";
      return report;
    }
    if (stored_config != golden_config_hash(options)) {
      report.detail = "header config hash does not match its own options";
      return report;
    }

    const std::string regenerated = record_golden(options);
    if (regenerated == bytes) {
      report.ok = true;
      return report;
    }
    const Reader fresh = Reader::from_bytes(regenerated, /*salvage=*/false);
    const std::vector<Frame>& expected = fresh.frames();
    const std::size_t common = std::min(frames.size(), expected.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (frames[i].type != expected[i].type ||
          frames[i].payload != expected[i].payload) {
        report.detail = "first divergence at frame " + std::to_string(i) +
                        " (" + record_type_name(frames[i].type) + ")";
        return report;
      }
    }
    report.detail = "frame count differs: artifact has " +
                    std::to_string(frames.size()) + ", replay produced " +
                    std::to_string(expected.size());
    return report;
  } catch (const ReplayException& e) {
    report.detail = e.what();
    return report;
  }
}

ArtifactInfo inspect_file(const std::string& path, bool salvage) {
  const std::string bytes = read_file_bytes(path);
  const Reader reader = Reader::from_bytes(bytes, salvage);
  ArtifactInfo info;
  info.bytes = bytes.size();
  info.frames = reader.frames().size();
  info.salvaged = reader.salvaged();
  info.salvaged_bytes = reader.salvaged_bytes();
  if (reader.salvaged()) {
    info.salvage_reason = replay_error_name(reader.salvage_reason());
  }

  std::vector<std::pair<RecordType, std::size_t>> counts;
  for (const Frame& frame : reader.frames()) {
    bool found = false;
    for (auto& [type, count] : counts) {
      if (type == frame.type) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(frame.type, 1);
  }
  for (const auto& [type, count] : counts) {
    info.frame_counts.push_back(std::to_string(count) + " x " +
                                record_type_name(type));
  }

  if (!reader.frames().empty() &&
      reader.frames().front().type == RecordType::kBatchHeader) {
    try {
      ByteReader header(reader.frames().front().payload);
      info.kind = header.str();
      if (info.kind == kGoldenKind) {
        info.scenario = header.str();
        info.seed = header.u64();
        info.config_hash = header.u64();
      } else {
        // trajectory-checkpoint layout (checkpoint.cpp).
        info.seed = header.u64();
        info.config_hash = header.u64();
      }
    } catch (const ReplayException&) {
      // A damaged header frame: report what parsed, keep the frame stats.
    }
  }
  return info;
}

std::string render_info(const ArtifactInfo& info) {
  std::ostringstream os;
  os << "kind:        " << (info.kind.empty() ? "(unknown)" : info.kind)
     << "\n";
  if (!info.scenario.empty()) os << "scenario:    " << info.scenario << "\n";
  os << "seed:        " << info.seed << "\n";
  os << "config hash: " << info.config_hash << "\n";
  os << "size:        " << info.bytes << " bytes, " << info.frames
     << " frames\n";
  for (const std::string& line : info.frame_counts) {
    os << "  " << line << "\n";
  }
  if (info.salvaged) {
    os << "salvaged:    dropped " << info.salvaged_bytes << " trailing bytes ("
       << info.salvage_reason << ")\n";
  }
  return os.str();
}

// ------------------------------------------------------ crash-demo batch

std::uint64_t crash_demo_config_hash(const CrashBatchOptions& options) {
  std::uint64_t h = fnv::kOffset;
  for (const char ch : std::string_view("crash-demo-v1")) {
    fnv::mix_bytes(h, static_cast<std::uint64_t>(
                          static_cast<std::uint8_t>(ch)));
  }
  fnv::mix_bytes(h, options.adaptive ? std::uint64_t{1} : std::uint64_t{0});
  return h;
}

sim::TrajectoryBatchResult run_crash_demo_batch(
    const CrashBatchOptions& options) {
  GOC_CHECK_ARG(!options.checkpoint_path.empty(),
                "crash-demo batch needs a checkpoint path");
  sim::TrajectoryBatchOptions batch;
  batch.replicas = options.replicas;
  batch.root_seed = options.seed;
  batch.threads = options.threads;
  batch.config_hash = crash_demo_config_hash(options);
  if (options.adaptive) {
    sim::StoppingRule rule;
    rule.metric = "share_mae";
    rule.tolerance = 0.02;
    rule.relative = true;
    rule.min_replicas = std::min<std::size_t>(8, options.replicas);
    rule.max_replicas = options.replicas;
    rule.wave = options.interval;
    batch.stopping = rule;
  }
  CheckpointOptions ckpt;
  ckpt.path = options.checkpoint_path;
  ckpt.interval = options.interval;
  if (options.kill_after > 0) {
    ckpt.on_write = [writes = std::size_t{0},
                     kill_after = options.kill_after](std::size_t) mutable {
      if (++writes >= kill_after) std::raise(SIGKILL);
    };
  }
  batch.checkpoint = std::move(ckpt);

  return sim::run_chain_batch(
      [](std::uint64_t seed) {
        std::vector<chain::ChainSpec> chains;
        chains.push_back(chain::ChainSpec{
            "heavy", 600.0, 1.0 / 6.0, 30.0,
            std::make_unique<chain::FixedWindowRetarget>(72, 1.0 / 6.0)});
        chains.push_back(chain::ChainSpec{
            "light", 600.0, 1.0 / 6.0, 10.0,
            std::make_unique<chain::FixedWindowRetarget>(72, 1.0 / 6.0)});
        std::vector<double> powers;
        for (std::size_t i = 0; i < 12; ++i) {
          powers.push_back(5.0 + static_cast<double>(i % 4) * 7.0);
        }
        chain::ChainSimOptions sim_options;
        sim_options.duration_hours = 120.0;
        sim_options.record_timeline = false;
        sim_options.seed = seed;
        return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                          sim_options);
      },
      batch);
}

}  // namespace goc::replay
