#include "replay/replay.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "io/serialize.hpp"
#include "util/crc32.hpp"

namespace goc::replay {

const char* replay_error_name(ReplayError error) noexcept {
  switch (error) {
    case ReplayError::kIo:
      return "io";
    case ReplayError::kBadMagic:
      return "bad-magic";
    case ReplayError::kVersionMismatch:
      return "version-mismatch";
    case ReplayError::kCrcMismatch:
      return "crc-mismatch";
    case ReplayError::kTruncated:
      return "truncated";
    case ReplayError::kMalformed:
      return "malformed";
    case ReplayError::kHeaderMismatch:
      return "header-mismatch";
  }
  return "unknown";
}

const char* record_type_name(RecordType type) noexcept {
  switch (type) {
    case RecordType::kBatchHeader:
      return "batch-header";
    case RecordType::kReplicaRow:
      return "replica-row";
    case RecordType::kWelford:
      return "welford";
    case RecordType::kChainSnapshot:
      return "chain-snapshot";
    case RecordType::kMarketSnapshot:
      return "market-snapshot";
    case RecordType::kTrajectoryHash:
      return "trajectory-hash";
    case RecordType::kFooter:
      return "footer";
    case RecordType::kFig1Snapshot:
      return "fig1-snapshot";
  }
  return "unknown";
}

// ------------------------------------------------------------- byte codec

void ByteWriter::u8(std::uint8_t v) {
  bytes_.push_back(static_cast<char>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int byte = 0; byte < 4; ++byte) {
    bytes_.push_back(static_cast<char>((v >> (8 * byte)) & 0xFFu));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    bytes_.push_back(static_cast<char>((v >> (8 * byte)) & 0xFFu));
  }
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view v) {
  if (v.size() > 0xFFFFFFFFu) {
    throw ReplayException(ReplayError::kMalformed, "string too long to frame");
  }
  u32(static_cast<std::uint32_t>(v.size()));
  bytes_.append(v.data(), v.size());
}

void ByteReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw ReplayException(ReplayError::kMalformed,
                          "frame payload ends mid-field");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int byte = 0; byte < 4; ++byte) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes_[pos_ + byte]))
         << (8 * byte);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int byte = 0; byte < 8; ++byte) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[pos_ + byte]))
         << (8 * byte);
  }
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string v(bytes_.substr(pos_, len));
  pos_ += len;
  return v;
}

// ----------------------------------------------------------- file framing

Writer::Writer() {
  image_.append(kMagic, sizeof(kMagic));
  ByteWriter version;
  version.u32(kFormatVersion);
  image_ += version.bytes();
}

void Writer::append(RecordType type, std::string_view payload) {
  if (payload.size() > 0xFFFFFFFFu) {
    throw ReplayException(ReplayError::kMalformed, "frame payload too large");
  }
  ByteWriter frame;
  frame.u8(static_cast<std::uint8_t>(type));
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  std::string head = frame.bytes();
  std::uint32_t crc = crc32::update(0, head.data(), head.size());
  crc = crc32::update(crc, payload.data(), payload.size());
  image_ += head;
  image_.append(payload.data(), payload.size());
  ByteWriter tail;
  tail.u32(crc);
  image_ += tail.bytes();
}

void Writer::write_atomic(const std::string& path) const {
  try {
    io::atomic_write_file(image_, path);
  } catch (const std::runtime_error& e) {
    throw ReplayException(ReplayError::kIo, e.what());
  }
}

Reader Reader::open(const std::string& path, bool salvage) {
  return from_bytes(read_file_bytes(path), salvage);
}

Reader Reader::from_bytes(std::string_view bytes, bool salvage) {
  // Magic + version are the trust anchor: unsalvageable in either mode.
  if (bytes.size() < sizeof(kMagic) + 4 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw ReplayException(ReplayError::kBadMagic,
                          "not a goc replay artifact (bad or short magic)");
  }
  ByteReader header(bytes.substr(sizeof(kMagic), 4));
  const std::uint32_t version = header.u32();
  if (version != kFormatVersion) {
    throw ReplayException(
        ReplayError::kVersionMismatch,
        "artifact format v" + std::to_string(version) + ", reader supports v" +
            std::to_string(kFormatVersion));
  }

  Reader reader;
  std::size_t pos = sizeof(kMagic) + 4;
  while (pos < bytes.size()) {
    const std::size_t frame_start = pos;
    const auto fail = [&](ReplayError error, const char* what) {
      if (salvage) {
        reader.salvaged_bytes_ = bytes.size() - frame_start;
        reader.salvage_reason_ = error;
        pos = bytes.size();
        return true;  // stop the scan, keep the prefix
      }
      throw ReplayException(
          error, std::string(what) + " at offset " + std::to_string(frame_start));
    };
    // type (1) + length (4)
    if (bytes.size() - pos < 5) {
      if (fail(ReplayError::kTruncated, "file ends mid-frame-header")) break;
    }
    const auto type = static_cast<std::uint8_t>(bytes[pos]);
    ByteReader len_reader(bytes.substr(pos + 1, 4));
    const std::uint32_t length = len_reader.u32();
    // payload + crc (4)
    if (bytes.size() - pos - 5 < static_cast<std::size_t>(length) + 4) {
      if (fail(ReplayError::kTruncated, "file ends mid-frame")) break;
    }
    const std::string_view framed = bytes.substr(pos, 5 + length);
    ByteReader crc_reader(bytes.substr(pos + 5 + length, 4));
    const std::uint32_t stored_crc = crc_reader.u32();
    if (crc32::compute(framed.data(), framed.size()) != stored_crc) {
      if (fail(ReplayError::kCrcMismatch, "frame checksum failed")) break;
    }
    Frame frame;
    frame.type = static_cast<RecordType>(type);
    frame.payload.assign(framed.substr(5));
    reader.frames_.push_back(std::move(frame));
    pos += 5 + static_cast<std::size_t>(length) + 4;
  }
  return reader;
}

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ReplayException(ReplayError::kIo, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw ReplayException(ReplayError::kIo, "failed reading " + path);
  }
  return std::move(buffer).str();
}

bool file_exists(const std::string& path) noexcept {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace goc::replay
