#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// \file replay.hpp
/// The versioned, CRC32-framed binary replay/checkpoint format.
///
/// Every crash-safe artifact in this repo — trajectory-batch checkpoints
/// (checkpoint.hpp) and golden replay recordings (golden.hpp) — is one
/// file in this layout:
///
/// ```
/// magic   8 bytes  "GOCRPLAY"
/// version u32      kFormatVersion (little-endian, like all integers)
/// frame*           until end of file
/// ```
///
/// where each frame is
///
/// ```
/// type    u8       RecordType tag (variant dispatch)
/// length  u32      payload byte count
/// payload length bytes
/// crc     u32      CRC-32 over type + length + payload
/// ```
///
/// Degradation contract: a reader in *strict* mode rejects any defect with
/// a typed error (`ReplayError::{kBadMagic, kVersionMismatch, kCrcMismatch,
/// kTruncated, ...}`); in *salvage* mode it keeps every frame up to the
/// first defect and reports what stopped the scan — so a file torn by a
/// crash or flipped by bad storage yields its longest valid frame prefix,
/// never UB or silently wrong data. Files are written atomically
/// (tmp + fsync + rename, `io::atomic_write_file`), so on a POSIX
/// filesystem a crash mid-write cannot tear the artifact at all; salvage
/// covers everything else (non-atomic transports, bit rot, truncation).

namespace goc::replay {

/// First 8 bytes of every artifact.
inline constexpr char kMagic[8] = {'G', 'O', 'C', 'R', 'P', 'L', 'A', 'Y'};

/// Bumped on any layout change; readers reject other versions.
inline constexpr std::uint32_t kFormatVersion = 1;

/// What went wrong with an artifact (the typed-error taxonomy).
enum class ReplayError {
  kIo,              ///< file missing / unreadable / unwritable
  kBadMagic,        ///< not a replay artifact at all
  kVersionMismatch, ///< artifact from an incompatible format version
  kCrcMismatch,     ///< a frame's checksum failed (bit flip / torn write)
  kTruncated,       ///< file ends mid-frame
  kMalformed,       ///< frame payload does not parse as its record type
  kHeaderMismatch,  ///< artifact header disagrees with the live scenario
};

/// Stable display name ("io", "bad-magic", ...).
const char* replay_error_name(ReplayError error) noexcept;

/// The typed exception every replay entry point throws.
class ReplayException : public std::runtime_error {
 public:
  ReplayException(ReplayError error, const std::string& what)
      : std::runtime_error(std::string("goc::replay [") +
                           replay_error_name(error) + "]: " + what),
        error_(error) {}

  ReplayError error() const noexcept { return error_; }

 private:
  ReplayError error_;
};

/// Frame type tags. Values are part of the on-disk format — append only.
enum class RecordType : std::uint8_t {
  kBatchHeader = 1,     ///< artifact identity: kind, seed, config hash, ...
  kReplicaRow = 2,      ///< one replica's metric values
  kWelford = 3,         ///< prefix-Welford state over the completed rows
  kChainSnapshot = 4,   ///< periodic chain-simulator state sample
  kMarketSnapshot = 5,  ///< periodic market-simulator state sample
  kTrajectoryHash = 6,  ///< one replica's full-trajectory FNV hash
  kFooter = 7,          ///< completed count + values hash (end marker)
  kFig1Snapshot = 8,    ///< periodic fig1-replay coupled state sample
};

/// Stable display name ("batch-header", "replica-row", ...).
const char* record_type_name(RecordType type) noexcept;

// ------------------------------------------------------------- byte codec

/// Little-endian payload builder. All multi-byte integers in the format go
/// through this, so artifacts are byte-identical across architectures.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw IEEE-754 bits of `v` as a u64 — doubles round-trip bit-exactly.
  void f64(double v);
  /// u32 length prefix + bytes.
  void str(std::string_view v);

  const std::string& bytes() const noexcept { return bytes_; }

 private:
  std::string bytes_;
};

/// Bounds-checked little-endian payload parser; throws
/// `ReplayException(kMalformed)` on overrun (a frame that passed its CRC
/// but does not parse is malformed, not truncated).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool done() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// ----------------------------------------------------------- file framing

/// One decoded frame.
struct Frame {
  RecordType type;
  std::string payload;
};

/// Accumulates frames into a complete artifact image and writes it
/// atomically. The writer holds the whole image in memory — checkpoint and
/// golden artifacts are kilobytes, and full-image rewrite is what makes a
/// checkpoint update a single atomic rename.
class Writer {
 public:
  Writer();

  void append(RecordType type, std::string_view payload);
  void append(RecordType type, const ByteWriter& payload) {
    append(type, payload.bytes());
  }

  /// The complete artifact image (magic + version + frames so far).
  const std::string& bytes() const noexcept { return image_; }

  /// tmp + fsync + rename via `io::atomic_write_file`; throws
  /// `ReplayException(kIo)` on failure.
  void write_atomic(const std::string& path) const;

 private:
  std::string image_;
};

/// Parses an artifact image. Strict mode throws a typed error on the first
/// defect; salvage mode keeps the longest valid frame prefix and records
/// why the scan stopped.
class Reader {
 public:
  /// Loads and parses a file. Throws `ReplayException(kIo)` when the file
  /// cannot be read; magic/version defects throw in both modes (there is
  /// nothing to salvage without a trusted header line).
  static Reader open(const std::string& path, bool salvage);

  /// Same, over an in-memory image.
  static Reader from_bytes(std::string_view bytes, bool salvage);

  const std::vector<Frame>& frames() const noexcept { return frames_; }

  /// True iff salvage mode dropped trailing bytes.
  bool salvaged() const noexcept { return salvaged_bytes_ > 0; }
  /// Bytes dropped after the last valid frame (0 for a pristine file).
  std::size_t salvaged_bytes() const noexcept { return salvaged_bytes_; }
  /// What stopped the scan when `salvaged()` (kCrcMismatch or kTruncated).
  ReplayError salvage_reason() const noexcept { return salvage_reason_; }

 private:
  std::vector<Frame> frames_;
  std::size_t salvaged_bytes_ = 0;
  ReplayError salvage_reason_ = ReplayError::kTruncated;
};

/// Reads a whole file into memory; throws `ReplayException(kIo)`.
std::string read_file_bytes(const std::string& path);

/// True iff `path` names an existing regular file (checkpoint resume
/// probes with this instead of racing open()).
bool file_exists(const std::string& path) noexcept;

}  // namespace goc::replay
