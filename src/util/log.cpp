#include "util/log.hpp"

#include <cstdio>

namespace goc {
namespace {
LogLevel g_level = LogLevel::Warn;

const char* tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[goc %s] %s\n", tag(level), message.c_str());
}

}  // namespace goc
