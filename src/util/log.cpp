#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace goc {
namespace {

LogLevel level_from_env() noexcept {
  const char* env = std::getenv("GOC_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogLevel::Warn;
  try {
    return log_level_from_name(env);
  } catch (const std::exception&) {
    // A typo in the environment must not abort static init; fall back to
    // the default and let the first Warn-level message flow as usual.
    return LogLevel::Warn;
  }
}

std::atomic<LogLevel>& level_store() noexcept {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  level_store().store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return level_store().load(std::memory_order_relaxed);
}

LogLevel log_level_from_name(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off") return LogLevel::Off;
  throw std::invalid_argument("unknown log level '" + name +
                              "' (debug, info, warn, error, off)");
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[goc %s] %s\n", tag(level), message.c_str());
}

}  // namespace goc
