#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file cli.hpp
/// Minimal command-line option parsing for example and benchmark binaries.
///
/// Accepted syntax: `--name=value`, `--name value`, and boolean `--flag`.
/// `unknown(known_names)` returns the parsed option names outside a known
/// set so binaries (and the serve daemon's request parser) can fail fast
/// with a usage string instead of silently ignoring a typo.

namespace goc {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  const std::string& program() const noexcept { return program_; }

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  std::int64_t get_i64(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// Boolean flags: present without value (or "true"/"1") → true;
  /// "false"/"0" → false.
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Option names that were parsed (for validation against a known set).
  std::vector<std::string> option_names() const;

  /// Parsed option names NOT in `known` (sorted, as parsed order is lost
  /// to the map). Empty means every option was recognised; non-empty is
  /// the fail-fast signal — a typo like `--stop-maxx` never silently
  /// falls back to a default again.
  std::vector<std::string> unknown(const std::vector<std::string>& known) const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace goc
