#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file stats.hpp
/// Streaming and batch summary statistics for benchmark harnesses.

namespace goc {

/// Welford-style running accumulator: O(1) per observation, numerically
/// stable mean/variance, tracks extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

  /// Half-width of the normal-approximation 95% confidence interval for the
  /// mean; 0 for fewer than two observations.
  double ci95_halfwidth() const noexcept;

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch sample keeping all observations; supports exact percentiles.
class Sample {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }
  double mean() const noexcept;
  double stddev() const noexcept;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, q in [0, 100]. Throws
  /// std::invalid_argument on empty sample or q out of range.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& values() const noexcept { return values_; }

  /// "mean=... sd=... p50=... p95=... min=... max=... n=..." summary line.
  std::string summary() const;

 private:
  mutable std::vector<double> sorted_cache_;
  mutable bool sorted_valid_ = false;
  std::vector<double> values_;

  const std::vector<double>& sorted() const;
};

}  // namespace goc
