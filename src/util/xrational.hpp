#pragma once

#include <compare>
#include <string>

#include "util/rational.hpp"

/// \file xrational.hpp
/// Rationals extended with +infinity.
///
/// The paper defines the revenue-per-unit of a coin as `F(c)/M_c(s)`, which
/// is undefined when no miner mines `c`. For the ordinal-potential list of
/// Theorem 1 and the reward-design level `R(s)` we need a total order that
/// also covers empty coins; an empty coin is maximally attractive per unit
/// of power, so we model its RPU as `+∞` (see DESIGN.md §2.1). Only
/// +infinity is needed — RPUs are never negative.

namespace goc {

class XRational {
 public:
  /// Finite value (implicit: a Rational is an XRational).
  constexpr XRational() noexcept : infinite_(false), value_() {}
  XRational(Rational value) noexcept  // NOLINT(google-explicit-constructor)
      : infinite_(false), value_(std::move(value)) {}

  static XRational infinity() noexcept {
    XRational x;
    x.infinite_ = true;
    return x;
  }

  bool is_infinite() const noexcept { return infinite_; }
  bool is_finite() const noexcept { return !infinite_; }

  /// The finite value; throws goc::InvariantError if infinite.
  const Rational& finite_value() const {
    GOC_ASSERT(!infinite_, "finite_value() on +inf");
    return value_;
  }

  std::strong_ordering operator<=>(const XRational& other) const noexcept {
    if (infinite_ && other.infinite_) return std::strong_ordering::equal;
    if (infinite_) return std::strong_ordering::greater;
    if (other.infinite_) return std::strong_ordering::less;
    return value_ <=> other.value_;
  }
  bool operator==(const XRational& other) const noexcept {
    return infinite_ == other.infinite_ &&
           (infinite_ || value_ == other.value_);
  }

  /// +inf renders as "inf".
  std::string to_string() const {
    return infinite_ ? "inf" : value_.to_string();
  }

  /// +inf maps to the double infinity.
  double to_double() const noexcept;

 private:
  bool infinite_;
  Rational value_;
};

}  // namespace goc
