#include "util/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace goc {

Cli::Cli(int argc, const char* const* argv) {
  GOC_CHECK_ARG(argc >= 1 && argv != nullptr, "Cli requires argv[0]");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself an option or absent —
    // then it is a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool Cli::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_i64(const std::string& name, std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

std::uint64_t Cli::get_u64(const std::string& name,
                           std::uint64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects an unsigned integer, got '" +
                                it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("option --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Cli::option_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [k, _] : options_) names.push_back(k);
  return names;
}

std::vector<std::string> Cli::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> stray;
  for (const auto& [name, _] : options_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      stray.push_back(name);
    }
  }
  return stray;
}

}  // namespace goc
