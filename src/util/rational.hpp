#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "util/assert.hpp"
#include "util/int128.hpp"

/// \file rational.hpp
/// Exact rational arithmetic for game-theoretic comparisons.
///
/// Every quantity the paper reasons about — mining power, coin reward,
/// revenue-per-unit (RPU), payoff — is compared *exactly*: better-response
/// steps require strict improvement, the ordinal potential of Theorem 1 is a
/// lexicographic order over RPU values, and Assumption 2 (genericity) is a
/// statement about exact inequality of fractions. Floating point would make
/// all of these silently unsound, so the core model uses `Rational`
/// throughout. Stochastic substrates (market/chain simulators) work in
/// `double` and quantize at the boundary via `Rational::from_double`.
///
/// Representation: normalized `num/den` with `den > 0`,
/// `gcd(|num|, den) == 1`, both stored as 128-bit integers. Operations that
/// would exceed 128-bit intermediates throw `goc::OverflowError`;
/// comparisons never overflow (they reduce by GCD first and fall back to a
/// continued-fraction walk).

namespace goc {

class Rational {
 public:
  /// Zero.
  constexpr Rational() noexcept : num_(0), den_(1) {}

  /// Integer value.
  constexpr Rational(std::int64_t value) noexcept  // NOLINT(google-explicit-constructor)
      : num_(value), den_(1) {}

  /// `numerator / denominator`; throws std::invalid_argument on zero
  /// denominator. Normalizes sign and reduces to lowest terms.
  Rational(std::int64_t numerator, std::int64_t denominator);

  /// Named constructor from raw 128-bit parts (used internally and by
  /// tests); same normalization rules as the int64 constructor.
  static Rational from_parts(i128 numerator, i128 denominator);

  /// Best rational approximation of `value` with denominator at most
  /// `max_denominator`, via a Stern–Brocot / continued-fraction walk.
  /// Throws std::invalid_argument for non-finite input or
  /// `max_denominator == 0`.
  static Rational from_double(double value, std::uint64_t max_denominator);

  i128 numerator() const noexcept { return num_; }
  i128 denominator() const noexcept { return den_; }

  bool is_zero() const noexcept { return num_ == 0; }
  bool is_negative() const noexcept { return num_ < 0; }
  bool is_positive() const noexcept { return num_ > 0; }
  bool is_integer() const noexcept { return den_ == 1; }

  /// Exact three-way comparison. Never throws and never overflows: reduces
  /// the cross products by GCD and, if 128 bits still do not suffice,
  /// compares continued-fraction expansions term by term.
  std::strong_ordering operator<=>(const Rational& other) const noexcept;
  bool operator==(const Rational& other) const noexcept {
    return num_ == other.num_ && den_ == other.den_;
  }

  Rational operator-() const noexcept;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Throws std::domain_error when dividing by zero.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  /// |x|.
  Rational abs() const noexcept;
  /// 1/x; throws std::domain_error on zero.
  Rational reciprocal() const;

  /// Closest double (may round).
  double to_double() const noexcept;

  /// "p" for integers, "p/q" otherwise.
  std::string to_string() const;

  /// FNV-style hash consistent with operator==.
  std::size_t hash() const noexcept;

 private:
  Rational(i128 num, i128 den, bool already_normalized);
  void normalize();

  i128 num_;
  i128 den_;  // invariant: den_ > 0, gcd(|num_|, den_) == 1
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace goc

template <>
struct std::hash<goc::Rational> {
  std::size_t operator()(const goc::Rational& r) const noexcept {
    return r.hash();
  }
};
