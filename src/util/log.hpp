#pragma once

#include <sstream>
#include <string>

/// \file log.hpp
/// Leveled logging to stderr. The default level is Warn so library code
/// can narrate without polluting benchmark tables; the `GOC_LOG_LEVEL`
/// environment variable (debug/info/warn/error/off) presets it, and the
/// daemons' `--verbose` flag lowers it to Debug. The threshold is a
/// relaxed atomic, so the serve daemon's driver threads may log
/// concurrently with a client thread adjusting the level; each message is
/// a single `fprintf`, so lines never interleave mid-line.

namespace goc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parses a level name ("debug", "info", "warn", "error", "off" —
/// case-insensitive, "warning" accepted). Throws std::invalid_argument on
/// anything else.
LogLevel log_level_from_name(const std::string& name);

/// Emits `message` with a level tag if `level` passes the global threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-composing helper used by the GOC_LOG macro; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace goc

#define GOC_LOG(level) ::goc::detail::LogLine(::goc::LogLevel::level)
