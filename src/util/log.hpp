#pragma once

#include <sstream>
#include <string>

/// \file log.hpp
/// Leveled logging to stderr. Single-threaded by design (the library is a
/// simulator, not a server); the default level is Warn so library code can
/// narrate without polluting benchmark tables.

namespace goc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits `message` with a level tag if `level` passes the global threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Stream-composing helper used by the GOC_LOG macro; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace goc

#define GOC_LOG(level) ::goc::detail::LogLine(::goc::LogLevel::level)
