#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace goc {

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_group(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  out.append(digits, 0, lead);
  for (std::size_t i = lead; i < digits.size(); i += 3) {
    out.push_back('_');
    out.append(digits, i, 3);
  }
  return out;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GOC_CHECK_ARG(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  GOC_CHECK_ARG(cells.size() == headers_.size(),
                "row arity does not match table header");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder::~RowBuilder() noexcept(false) {
  table_.add_row(std::move(cells_));
}

Table::RowBuilder& Table::RowBuilder::operator<<(const std::string& cell) {
  cells_.push_back(cell);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(const char* cell) {
  cells_.emplace_back(cell);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(double value) {
  cells_.push_back(fmt_double(value));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(int value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << "  ";
      os << std::string(widths[c] - cells[c].size(), ' ') << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << title << '\n';
  os << to_ascii();
}

void Table::save_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << to_csv();
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace goc
