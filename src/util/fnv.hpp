#pragma once

#include <bit>
#include <cstdint>

/// \file fnv.hpp
/// FNV-1a hashing primitives, single-sourced.
///
/// Three hash-equality contracts in this repo ride on FNV-1a: the learning
/// loop's `move_hash` (scan-vs-index trajectory equality), configuration
/// hashing (equilibrium dedup buckets), and the sim layer's trajectory /
/// value-matrix hashes (legacy-vs-flat and thread-invariance checks). Two
/// mixing granularities are deliberately kept:
///  * `mix_word`  — one xor-multiply per 64-bit word (the historical
///    `move_hash` / `Configuration::hash` definition; cheap, and collisions
///    only matter within small in-run sets);
///  * `mix_bytes` — canonical byte-wise FNV-1a (the sim layer's trajectory
///    hashes, where whole result structs are folded in).
/// Changing either changes published hash columns — don't.

namespace goc::fnv {

inline constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kPrime = 0x100000001b3ULL;

/// One xor-multiply step over a whole 64-bit word.
inline void mix_word(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v;
  h *= kPrime;
}

/// Canonical byte-wise FNV-1a over the 8 bytes of `v` (LSB first).
inline void mix_bytes(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= kPrime;
  }
}

inline void mix_bytes(std::uint64_t& h, double v) noexcept {
  mix_bytes(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace goc::fnv
