#include "util/int128.hpp"

#include <algorithm>

namespace goc {

std::string to_string(i128 value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  u128 mag = uabs128(value);
  std::string digits;
  while (mag != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(mag % 10)));
    mag /= 10;
  }
  if (negative) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

}  // namespace goc
