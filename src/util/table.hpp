#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Console/CSV table rendering for benchmark harnesses.
///
/// Every experiment binary prints its results as an aligned ASCII table (the
/// "rows the paper reports") and can also persist CSV for plotting.

namespace goc {

/// Fixed-precision double formatting ("%.*f") without iostream state leaks.
std::string fmt_double(double value, int precision = 3);

/// Human-readable large integer (e.g. "12_345_678").
std::string fmt_group(std::uint64_t value);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t columns() const noexcept { return headers_.size(); }
  std::size_t rows() const noexcept { return rows_.size(); }

  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& row_data() const noexcept {
    return rows_;
  }

  /// Adds a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Streaming row builder: `table.row() << 3 << "abc" << 1.5;` commits on
  /// destruction and validates arity.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;
    RowBuilder(RowBuilder&&) = delete;
    ~RowBuilder() noexcept(false);

    RowBuilder& operator<<(const std::string& cell);
    RowBuilder& operator<<(const char* cell);
    RowBuilder& operator<<(double value);
    RowBuilder& operator<<(std::int64_t value);
    RowBuilder& operator<<(std::uint64_t value);
    RowBuilder& operator<<(int value);

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  /// Right-aligned ASCII rendering with a header separator.
  std::string to_ascii() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  /// Writes `to_ascii()` preceded by an optional title line.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace goc
