#pragma once

#include <cstddef>
#include <cstdint>

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the frame
/// checksum of the replay/checkpoint binary format.
///
/// Implemented in-house (table-driven, one table built on first use) for
/// the same reason the RNG is: artifacts recorded on one machine must
/// verify bit-for-bit on every other, so the checksum cannot depend on an
/// optional third-party library. The value for the empty message is 0 and
/// `compute("123456789") == 0xCBF43926` (the standard check value, pinned
/// by tests/test_replay.cpp).

namespace goc::crc32 {

/// Folds `size` bytes at `data` into a running CRC (start from 0).
std::uint32_t update(std::uint32_t crc, const void* data,
                     std::size_t size) noexcept;

/// One-shot CRC-32 of a buffer.
inline std::uint32_t compute(const void* data, std::size_t size) noexcept {
  return update(0, data, size);
}

}  // namespace goc::crc32
