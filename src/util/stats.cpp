#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace goc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double combined = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / combined;
  mean_ = (n1 * mean_ + n2 * other.mean_) / combined;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

const std::vector<double>& Sample::sorted() const {
  if (!sorted_valid_ || sorted_cache_.size() != values_.size()) {
    sorted_cache_ = values_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    sorted_valid_ = true;
  }
  return sorted_cache_;
}

double Sample::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Sample::min() const {
  GOC_CHECK_ARG(!values_.empty(), "min of empty sample");
  return sorted().front();
}

double Sample::max() const {
  GOC_CHECK_ARG(!values_.empty(), "max of empty sample");
  return sorted().back();
}

double Sample::percentile(double q) const {
  GOC_CHECK_ARG(!values_.empty(), "percentile of empty sample");
  GOC_CHECK_ARG(q >= 0.0 && q <= 100.0, "percentile out of [0,100]");
  const auto& s = sorted();
  if (s.size() == 1) return s.front();
  const double pos = q / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

std::string Sample::summary() const {
  std::ostringstream os;
  if (values_.empty()) {
    os << "n=0";
    return os.str();
  }
  os << "mean=" << mean() << " sd=" << stddev() << " p50=" << percentile(50)
     << " p95=" << percentile(95) << " min=" << min() << " max=" << max()
     << " n=" << values_.size();
  return os.str();
}

}  // namespace goc
