#include "util/rational.hpp"

#include <cmath>
#include <limits>
#include <ostream>

namespace goc {
namespace {

/// Compares a/b with c/d for nonnegative a, c and positive b, d, without
/// overflow: walks the continued-fraction expansions of both fractions in
/// lock-step (Euclid's algorithm), comparing integer parts; the comparison
/// direction flips on every reciprocal step.
std::strong_ordering compare_cf(u128 a, u128 b, u128 c, u128 d) noexcept {
  bool flipped = false;
  for (;;) {
    const u128 q1 = a / b;
    const u128 q2 = c / d;
    if (q1 != q2) {
      const auto ord =
          q1 < q2 ? std::strong_ordering::less : std::strong_ordering::greater;
      return flipped ? (ord == std::strong_ordering::less
                            ? std::strong_ordering::greater
                            : std::strong_ordering::less)
                     : ord;
    }
    const u128 r1 = a % b;
    const u128 r2 = c % d;
    if (r1 == 0 && r2 == 0) return std::strong_ordering::equal;
    if (r1 == 0) return flipped ? std::strong_ordering::greater
                                : std::strong_ordering::less;
    if (r2 == 0) return flipped ? std::strong_ordering::less
                                : std::strong_ordering::greater;
    // a/b <=> c/d  ==  r1/b <=> r2/d  ==  (d/r2 <=> b/r1) after reciprocal.
    a = b;
    b = r1;
    c = d;
    d = r2;
    flipped = !flipped;
  }
}

bool mul_overflow_u128(u128 x, u128 y, u128* out) noexcept {
  return __builtin_mul_overflow(x, y, out);
}

/// Small-operand predicate for the arithmetic fast paths: when every
/// numerator and denominator of both operands fits in 32 bits, each cross
/// product fits in 62 bits and a sum of two fits in 63, so no intermediate
/// can overflow and the GCD pre-reduction (two 128-bit GCDs per `+`/`*`)
/// is pure overhead — the single reduction in `normalize()` suffices.
constexpr i128 kSmallOperand = static_cast<i128>(1) << 31;

constexpr bool small_operand(i128 num, i128 den) noexcept {
  return num > -kSmallOperand && num < kSmallOperand && den < kSmallOperand;
}

}  // namespace

Rational::Rational(std::int64_t numerator, std::int64_t denominator)
    : num_(numerator), den_(denominator) {
  GOC_CHECK_ARG(denominator != 0, "Rational denominator must be nonzero");
  normalize();
}

Rational::Rational(i128 num, i128 den, bool already_normalized)
    : num_(num), den_(den) {
  if (!already_normalized) normalize();
}

Rational Rational::from_parts(i128 numerator, i128 denominator) {
  GOC_CHECK_ARG(denominator != 0, "Rational denominator must be nonzero");
  return Rational(numerator, denominator, /*already_normalized=*/false);
}

void Rational::normalize() {
  GOC_ASSERT(den_ != 0, "denormalized Rational with zero denominator");
  if (den_ < 0) {
    GOC_CHECK_ARG(den_ != kI128Min && num_ != kI128Min,
                  "Rational magnitude out of range");
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const u128 g = gcd128(uabs128(num_), static_cast<u128>(den_));
  if (g > 1) {
    // Divide magnitudes; safe because g divides both exactly.
    const bool neg = num_ < 0;
    const u128 n = uabs128(num_) / g;
    num_ = neg ? -static_cast<i128>(n) : static_cast<i128>(n);
    den_ = static_cast<i128>(static_cast<u128>(den_) / g);
  }
}

std::strong_ordering Rational::operator<=>(const Rational& other) const noexcept {
  // Fast sign-based discrimination.
  const int s1 = num_ < 0 ? -1 : (num_ > 0 ? 1 : 0);
  const int s2 = other.num_ < 0 ? -1 : (other.num_ > 0 ? 1 : 0);
  if (s1 != s2) return s1 <=> s2;
  if (s1 == 0) return std::strong_ordering::equal;

  // Same strict sign: compare magnitudes |a|/b vs |c|/d, flipping for
  // negatives. Try reduced cross-multiplication first.
  u128 a = uabs128(num_);
  u128 b = static_cast<u128>(den_);
  u128 c = uabs128(other.num_);
  u128 d = static_cast<u128>(other.den_);
  const u128 g1 = gcd128(a, c);
  const u128 g2 = gcd128(b, d);
  a /= g1;
  c /= g1;
  b /= g2;
  d /= g2;

  std::strong_ordering mag = std::strong_ordering::equal;
  u128 lhs = 0;
  u128 rhs = 0;
  if (!mul_overflow_u128(a, d, &lhs) && !mul_overflow_u128(c, b, &rhs)) {
    mag = lhs <=> rhs;
  } else {
    mag = compare_cf(a, b, c, d);
  }
  if (s1 < 0) {
    if (mag == std::strong_ordering::less) return std::strong_ordering::greater;
    if (mag == std::strong_ordering::greater) return std::strong_ordering::less;
    return std::strong_ordering::equal;
  }
  return mag;
}

Rational Rational::operator-() const noexcept {
  Rational r = *this;
  r.num_ = -r.num_;
  return r;
}

Rational Rational::operator+(const Rational& other) const {
  if (den_ == 1 && other.den_ == 1) {
    // Integer ⊕ integer — already normalized, no GCD at all. This is the
    // per-move mass update of every integer-power game.
    return Rational(checked_add(num_, other.num_), 1, /*already_normalized=*/true);
  }
  if (small_operand(num_, den_) && small_operand(other.num_, other.den_)) {
    return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_,
                    /*already_normalized=*/false);
  }
  // a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d).
  const u128 g = gcd128(static_cast<u128>(den_), static_cast<u128>(other.den_));
  const i128 d_over_g = static_cast<i128>(static_cast<u128>(other.den_) / g);
  const i128 b_over_g = static_cast<i128>(static_cast<u128>(den_) / g);
  const i128 num =
      checked_add(checked_mul(num_, d_over_g), checked_mul(other.num_, b_over_g));
  const i128 den = checked_mul(den_, d_over_g);
  return Rational(num, den, /*already_normalized=*/false);
}

Rational Rational::operator-(const Rational& other) const {
  return *this + (-other);
}

Rational Rational::operator*(const Rational& other) const {
  if (den_ == 1 && other.den_ == 1) {
    return Rational(checked_mul(num_, other.num_), 1, /*already_normalized=*/true);
  }
  if (small_operand(num_, den_) && small_operand(other.num_, other.den_)) {
    return Rational(num_ * other.num_, den_ * other.den_,
                    /*already_normalized=*/false);
  }
  // Reduce cross factors before multiplying to delay overflow.
  const u128 g1 = gcd128(uabs128(num_), static_cast<u128>(other.den_));
  const u128 g2 = gcd128(uabs128(other.num_), static_cast<u128>(den_));
  const i128 a = num_ / static_cast<i128>(g1);
  const i128 d = other.den_ / static_cast<i128>(g1);
  const i128 c = other.num_ / static_cast<i128>(g2);
  const i128 b = den_ / static_cast<i128>(g2);
  return Rational(checked_mul(a, c), checked_mul(b, d),
                  /*already_normalized=*/false);
}

Rational Rational::operator/(const Rational& other) const {
  if (other.num_ == 0) throw std::domain_error("Rational division by zero");
  return *this * other.reciprocal();
}

Rational Rational::abs() const noexcept {
  Rational r = *this;
  if (r.num_ < 0) r.num_ = -r.num_;
  return r;
}

Rational Rational::reciprocal() const {
  if (num_ == 0) throw std::domain_error("Rational reciprocal of zero");
  Rational r;
  if (num_ < 0) {
    r.num_ = -den_;
    r.den_ = -num_;
  } else {
    r.num_ = den_;
    r.den_ = num_;
  }
  return r;
}

double Rational::to_double() const noexcept {
  return static_cast<double>(static_cast<long double>(num_) /
                             static_cast<long double>(den_));
}

std::string Rational::to_string() const {
  if (den_ == 1) return goc::to_string(num_);
  return goc::to_string(num_) + "/" + goc::to_string(den_);
}

std::size_t Rational::hash() const noexcept {
  const auto mix = [](std::size_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::size_t h = 0;
  h = mix(h, static_cast<std::uint64_t>(static_cast<u128>(num_)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<u128>(num_) >> 64));
  h = mix(h, static_cast<std::uint64_t>(static_cast<u128>(den_)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<u128>(den_) >> 64));
  return h;
}

Rational Rational::from_double(double value, std::uint64_t max_denominator) {
  GOC_CHECK_ARG(std::isfinite(value), "from_double requires a finite value");
  GOC_CHECK_ARG(max_denominator > 0, "max_denominator must be positive");
  const bool negative = value < 0;
  double x = negative ? -value : value;

  // Continued-fraction walk maintaining convergents p/q; when the next
  // convergent's denominator would exceed the bound, take the best
  // semiconvergent instead.
  std::uint64_t p0 = 0, q0 = 1;  // previous convergent
  std::uint64_t p1 = 1, q1 = 0;  // current convergent
  double frac = x;
  for (int iter = 0; iter < 64; ++iter) {
    const double fa = std::floor(frac);
    if (fa > static_cast<double>(std::numeric_limits<std::int64_t>::max())) break;
    const std::uint64_t a = static_cast<std::uint64_t>(fa);
    // q2 = a*q1 + q0; stop if it exceeds the denominator bound.
    if (q1 != 0 && a > (max_denominator - q0) / q1) {
      const std::uint64_t t = (max_denominator - q0) / q1;  // largest valid step
      const std::uint64_t ps = t * p1 + p0;
      const std::uint64_t qs = t * q1 + q0;
      // Choose between the semiconvergent ps/qs and the last convergent
      // p1/q1, whichever is closer to x (ties to the smaller denominator).
      const double err_semi =
          std::fabs(x - static_cast<double>(ps) / static_cast<double>(qs));
      const double err_conv =
          std::fabs(x - static_cast<double>(p1) / static_cast<double>(q1));
      std::uint64_t bp = p1, bq = q1;
      if (qs <= max_denominator && err_semi < err_conv) {
        bp = ps;
        bq = qs;
      }
      return Rational(negative ? -static_cast<i128>(bp) : static_cast<i128>(bp),
                      static_cast<i128>(bq), /*already_normalized=*/false);
    }
    const std::uint64_t p2 = a * p1 + p0;
    const std::uint64_t q2 = a * q1 + q0;
    p0 = p1;
    q0 = q1;
    p1 = p2;
    q1 = q2;
    const double rem = frac - fa;
    if (rem < 1e-15 * (1.0 + fa)) break;  // exhausted double precision
    frac = 1.0 / rem;
  }
  GOC_ASSERT(q1 != 0, "continued-fraction walk produced no convergent");
  return Rational(negative ? -static_cast<i128>(p1) : static_cast<i128>(p1),
                  static_cast<i128>(q1), /*already_normalized=*/false);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace goc
