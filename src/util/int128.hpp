#pragma once

#include <cstdint>
#include <string>

#include "util/assert.hpp"

/// \file int128.hpp
/// Minimal 128-bit integer helpers.
///
/// `goc::Rational` needs headroom for cross-multiplied comparisons of
/// 64-bit-scale quantities; `__int128` provides it on every platform we
/// target (GCC/Clang, x86-64/aarch64). We deliberately avoid
/// `std::numeric_limits<__int128>` / `std::gcd`, which are unavailable in
/// strict-ANSI mode, and provide the few primitives we need.

namespace goc {

#if defined(__SIZEOF_INT128__)
__extension__ using i128 = __int128;
__extension__ using u128 = unsigned __int128;
#else
#error "goc requires a compiler with __int128 support"
#endif

/// Largest/smallest representable i128 (numeric_limits is not specialized
/// under -std=c++20 strict mode).
constexpr i128 kI128Max = static_cast<i128>((static_cast<u128>(1) << 127) - 1);
constexpr i128 kI128Min = -kI128Max - 1;

/// Absolute value as an unsigned 128-bit quantity (total, also for kI128Min).
constexpr u128 uabs128(i128 x) noexcept {
  return x < 0 ? ~static_cast<u128>(x) + 1 : static_cast<u128>(x);
}

/// Euclidean GCD on unsigned 64-bit values (hardware division beats the
/// binary 128-bit loop by a wide margin when the operands fit).
constexpr std::uint64_t gcd64(std::uint64_t a, std::uint64_t b) noexcept {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Binary GCD on unsigned 128-bit values. gcd(0, x) == x. Dispatches to the
/// 64-bit Euclidean path when both operands fit — the overwhelmingly common
/// case for game quantities — so `Rational` normalization stays cheap.
constexpr u128 gcd128(u128 a, u128 b) noexcept {
  if (a == 0) return b;
  if (b == 0) return a;
  if ((a >> 64) == 0 && (b >> 64) == 0) {
    return gcd64(static_cast<std::uint64_t>(a), static_cast<std::uint64_t>(b));
  }
  int shift = 0;
  while (((a | b) & 1) == 0) {
    a >>= 1;
    b >>= 1;
    ++shift;
  }
  while ((a & 1) == 0) a >>= 1;
  do {
    while ((b & 1) == 0) b >>= 1;
    if (a > b) {
      const u128 t = a;
      a = b;
      b = t;
    }
    b -= a;
  } while (b != 0);
  return a << shift;
}

/// Checked multiplication: returns false on overflow.
inline bool mul_overflow(i128 a, i128 b, i128* out) noexcept {
  return __builtin_mul_overflow(a, b, out);
}

/// Checked addition: returns false on overflow.
inline bool add_overflow(i128 a, i128 b, i128* out) noexcept {
  return __builtin_add_overflow(a, b, out);
}

/// Multiplies, throwing goc::OverflowError on 128-bit overflow.
inline i128 checked_mul(i128 a, i128 b) {
  i128 r;
  if (mul_overflow(a, b, &r)) throw OverflowError("i128 multiply overflow");
  return r;
}

/// Adds, throwing goc::OverflowError on 128-bit overflow.
inline i128 checked_add(i128 a, i128 b) {
  i128 r;
  if (add_overflow(a, b, &r)) throw OverflowError("i128 add overflow");
  return r;
}

/// Decimal rendering (std::to_string has no i128 overload).
std::string to_string(i128 value);

}  // namespace goc
