#include "util/xrational.hpp"

#include <limits>

namespace goc {

double XRational::to_double() const noexcept {
  if (infinite_) return std::numeric_limits<double>::infinity();
  return value_.to_double();
}

}  // namespace goc
