#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

/// \file rng.hpp
/// Deterministic pseudo-random generation.
///
/// All stochastic components (workload generators, schedulers, market and
/// chain simulators) draw from `goc::Rng`, a xoshiro256** engine seeded via
/// splitmix64. Distributions are implemented in-house rather than with
/// `<random>` so that a given seed reproduces the same experiment on every
/// platform and standard library — benchmark tables in EXPERIMENTS.md cite
/// seeds and must be regenerable.

namespace goc {

/// splitmix64 step; also used standalone for hashing seeds.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna), with convenience distributions.
class Rng {
 public:
  /// Seeds the four lanes from `seed` via splitmix64 (never all-zero).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Satisfies UniformRandomBitGenerator.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  /// `bound` must be positive.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponential with the given rate (mean 1/rate); rate must be positive.
  double exponential(double rate) noexcept;

  /// Standard normal via the polar (Marsaglia) method.
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;

  /// Pareto with scale x_m > 0 and shape alpha > 0.
  double pareto(double scale, double shape) noexcept;

  /// Zipf-distributed rank in [1, n] with exponent `s >= 0` by inverse
  /// transform over the exact CDF (O(log n) per draw after O(n) setup is
  /// avoided; this uses rejection-free cumulative search on demand and is
  /// intended for n up to ~1e6).
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen index into a non-empty container.
  template <typename Container>
  std::size_t pick_index(const Container& c) noexcept {
    GOC_DASSERT(!c.empty(), "pick_index on empty container");
    return static_cast<std::size_t>(next_below(c.size()));
  }

  /// Derives an independent child generator (for parallel workloads).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace goc
