#pragma once

#include <stdexcept>
#include <string>

/// \file assert.hpp
/// Error-handling primitives shared by every goc library.
///
/// Convention (C++ Core Guidelines I.5/E.x):
///  * `GOC_CHECK_ARG`   — validates a *caller-supplied precondition* of a
///    public API; failure throws `std::invalid_argument`.
///  * `GOC_ASSERT`      — validates an *internal invariant*; failure throws
///    `goc::InvariantError`. Enabled in all build types: the library's
///    correctness claims mirror paper proofs, so silent corruption is worse
///    than the branch cost.
///  * `GOC_DASSERT`     — hot-path invariant, compiled out in NDEBUG builds.

namespace goc {

/// Thrown when an internal invariant is violated (a library bug, not a
/// caller error).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when exact arithmetic would exceed 128-bit intermediate range.
class OverflowError : public std::overflow_error {
 public:
  explicit OverflowError(const std::string& what)
      : std::overflow_error(what) {}
};

namespace detail {
[[noreturn]] inline void invariant_failure(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  throw InvariantError(std::string("invariant violated: ") + expr + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (": " + msg)));
}
[[noreturn]] inline void argument_failure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  throw std::invalid_argument(std::string("precondition violated: ") + expr +
                              " at " + file + ":" + std::to_string(line) +
                              (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace goc

#define GOC_ASSERT(cond, msg)                                          \
  do {                                                                 \
    if (!(cond))                                                       \
      ::goc::detail::invariant_failure(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#define GOC_CHECK_ARG(cond, msg)                                      \
  do {                                                                \
    if (!(cond))                                                      \
      ::goc::detail::argument_failure(#cond, __FILE__, __LINE__, msg); \
  } while (false)

#ifdef NDEBUG
#define GOC_DASSERT(cond, msg) \
  do {                         \
  } while (false)
#else
#define GOC_DASSERT(cond, msg) GOC_ASSERT(cond, msg)
#endif
