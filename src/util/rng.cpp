#include "util/rng.hpp"

#include <cmath>

#include "util/int128.hpp"

namespace goc {
namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // xoshiro's state must not be all zero; splitmix64 never yields four
  // consecutive zeros, but keep the guard explicit and cheap.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  GOC_DASSERT(bound > 0, "next_below(0)");
  // Lemire's nearly-divisionless unbiased range reduction.
  u128 m = static_cast<u128>(next()) * static_cast<u128>(bound);
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      m = static_cast<u128>(next()) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  GOC_DASSERT(lo <= hi, "uniform_int empty range");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == ~0ULL) return static_cast<std::int64_t>(next());
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   next_below(span + 1));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::exponential(double rate) noexcept {
  GOC_DASSERT(rate > 0, "exponential rate must be positive");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -std::log(u) / rate;
}

double Rng::normal() noexcept {
  // Marsaglia polar method; consumes a variable number of draws but is
  // deterministic for a fixed seed (the only property we need).
  for (;;) {
    const double u = 2.0 * uniform01() - 1.0;
    const double v = 2.0 * uniform01() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::pareto(double scale, double shape) noexcept {
  GOC_DASSERT(scale > 0 && shape > 0, "pareto parameters must be positive");
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale / std::pow(u, 1.0 / shape);
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  GOC_DASSERT(n > 0, "zipf over empty support");
  // Rejection-inversion (Hörmann & Derflinger) is overkill here; a simple
  // inverse-transform on the harmonic CDF keeps the dependency surface
  // small. n is modest in every workload we generate.
  double h = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  const double target = uniform01() * h;
  double acc = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= target) return k;
  }
  return n;
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace goc
