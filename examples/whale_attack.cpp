/// \file whale_attack.cpp
/// The manipulation lever, physically: whale transactions (Liao–Katz).
///
/// The paper observes that an interested party can raise a coin's weight
/// "by creating additional transactions with high fees". This example
/// stages exactly that in the market simulator: a whale floods a minor
/// coin's mempool with outsized fees for a few epochs, miners chase the
/// inflated weight, and when the whale stops the market reverts — showing
/// both the power and the limitation (no persistence) of naive pumping,
/// which is what motivates the staged mechanism of Section 5.
///
/// Run:  ./whale_attack [--whale-fee F] [--epochs N] [--seed S]

#include <iostream>

#include "market/market_sim.hpp"
#include "market/price_process.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace goc;
  using namespace goc::market;
  const Cli cli(argc, argv);
  const double whale_fee = cli.get_double("whale-fee", 4000.0);
  const std::size_t epochs = cli.get_u64("epochs", 16);
  const std::uint64_t seed = cli.get_u64("seed", 37);
  const std::size_t attack_epochs = 4;

  // Two coins: a major (price 100) and a minor (price 10), same protocol.
  std::vector<CoinSpec> coins;
  coins.emplace_back("major", 10.0, 6.0,
                     std::make_unique<GbmProcess>(100.0, 0.0, 0.005),
                     FeeMarket(20.0, 0.01, 2.0));
  coins.emplace_back("minor", 10.0, 6.0,
                     std::make_unique<GbmProcess>(10.0, 0.0, 0.005),
                     FeeMarket(2.0, 0.01, 2.0));
  MarketOptions options;
  options.epochs = 1;  // we drive epochs one at a time
  options.br_steps_per_epoch = 0;
  options.seed = seed;
  MarketSimulator sim({8, 5, 3, 2, 1, 1}, std::move(coins), options);

  std::cout << "whale attack: inject " << whale_fee
            << " native units of fees into the minor coin for "
            << attack_epochs << " epochs, then stop.\n\n";

  Table table({"epoch", "whale_active", "minor_weight_$", "major_weight_$",
               "minor_hashrate_%"});
  double total_spent = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    const bool attacking = e < attack_epochs;
    if (attacking) {
      sim.inject_whale(1, whale_fee);
      total_spent += whale_fee;
    }
    const auto records = sim.run();  // one epoch
    const auto& r = records.front();
    table.row() << std::uint64_t(e) << (attacking ? "yes" : "no")
                << fmt_double(r.weights[1], 0) << fmt_double(r.weights[0], 0)
                << fmt_double(100.0 * r.hashrate_share[1], 1);
  }
  table.print(std::cout, "Epoch-by-epoch market state");

  std::cout << "\nwhale spent " << total_spent
            << " native units in fees. Hashrate followed the inflated weight"
            << " and reverted when the whale stopped — a one-shot pump buys "
               "attention, not a new equilibrium (cf. Section 5 and the "
               "reward_design_demo example).\n";
  return 0;
}
