/// \file reward_design_demo.cpp
/// Walkthrough of the paper's headline mechanism (Section 5, Algorithm 2):
/// a manipulator moves the whole mining ecosystem from one equilibrium to
/// another of its choosing by *temporarily* raising coin rewards — stage
/// by stage, mover by mover — and then stops paying, leaving the system
/// parked at the target because the target is an equilibrium of the
/// original rewards.
///
/// Run:  ./reward_design_demo [--miners N] [--coins C] [--seed S]
///       [--scheduler random-miner|min-gain|...]

#include <iostream>

#include "core/generators.hpp"
#include "design/intermediate.hpp"
#include "design/reward_design.hpp"
#include "equilibrium/enumerate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

goc::SchedulerKind parse_scheduler(const std::string& name) {
  using goc::SchedulerKind;
  for (const SchedulerKind kind : goc::all_scheduler_kinds()) {
    if (goc::scheduler_kind_name(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown scheduler '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t miners = cli.get_u64("miners", 6);
  const std::size_t coins = cli.get_u64("coins", 3);
  const std::uint64_t seed = cli.get_u64("seed", 7);
  const SchedulerKind kind =
      parse_scheduler(cli.get_string("scheduler", "random-miner"));

  // A game with strictly decreasing powers (the Section 5 assumption) and
  // at least two equilibria to move between.
  Rng rng(seed);
  GameSpec spec;
  spec.num_miners = miners;
  spec.num_coins = coins;
  spec.distinct_powers = true;
  spec.sort_desc = true;
  spec.power_hi = 100;
  spec.reward_lo = 50;
  spec.reward_hi = 900;
  Game game = random_game(spec, rng);
  auto equilibria = sample_equilibria(game, rng, 64);
  if (equilibria.size() < 2) {
    std::cout << "drawn game has a single sampled equilibrium; rerun with "
                 "another --seed\n";
    return 1;
  }
  const Configuration& s0 = equilibria.front();
  const Configuration& sf = equilibria.back();

  std::cout << "game:   " << game.to_string() << "\n"
            << "start   s0 = " << s0.to_string() << "\n"
            << "target  sf = " << sf.to_string() << "\n"
            << "miners' learning rule: " << scheduler_kind_name(kind)
            << " (the mechanism must work for ANY better-response rule)\n\n";

  auto scheduler = make_scheduler(kind, seed ^ 0xD1CE);
  DesignOptions options;
  options.audit = true;  // re-proves Lemma 1 / Theorem 2 invariants per step
  const DesignResult result =
      run_reward_design(game, s0, sf, *scheduler, options);

  Table stages({"stage", "intermediate_s^i", "iterations", "br_steps",
                "epoch_cost"});
  for (const StageRecord& rec : result.stages) {
    stages.row() << std::uint64_t(rec.stage)
                 << intermediate_configuration(sf, rec.stage).to_string()
                 << rec.iterations << rec.learning_steps
                 << rec.stage_cost.to_string();
  }
  stages.print(std::cout, "Algorithm 2 stages (paper Figure 2a)");

  std::cout << "\nresult: " << (result.success ? "SUCCESS" : "FAILED")
            << " — system now at " << result.final_configuration.to_string()
            << "\n"
            << "totals: " << result.total_iterations << " reward publications, "
            << result.total_learning_steps << " miner moves, cost "
            << result.total_cost.to_string() << " (vs per-epoch base reward "
            << game.rewards().total_reward().to_string() << ")\n"
            << "the manipulator now reverts to F and pays nothing further;\n"
            << "sf is an equilibrium of F, so the system stays put.\n";
  return result.success ? 0 : 1;
}
