/// \file quickstart.cpp
/// Five-minute tour of the library's public API:
///   1. build a system ⟨Π, C⟩ and a reward function F,
///   2. inspect payoffs and better responses in a configuration,
///   3. run better-response learning to a pure equilibrium (Theorem 1),
///   4. verify the equilibrium and the welfare identity (Observation 3).
///
/// Run:  ./quickstart

#include <iostream>

#include "core/game.hpp"
#include "core/moves.hpp"
#include "dynamics/learning.hpp"
#include "equilibrium/welfare.hpp"
#include "potential/list_potential.hpp"

int main() {
  using namespace goc;

  // 1. Four miners with powers 8, 4, 2, 1; three coins weighted 30, 20, 10.
  Game game(System::from_integer_powers({8, 4, 2, 1}, 3),
            RewardFunction::from_integers({30, 20, 10}));
  std::cout << "game: " << game.to_string() << "\n\n";

  // 2. Start with everyone mining coin c0 and look around.
  Configuration s = Configuration::all_at(game.system_ptr(), CoinId(0));
  std::cout << "start " << s.to_string() << "\n";
  for (std::uint32_t p = 0; p < game.num_miners(); ++p) {
    const MinerId miner(p);
    std::cout << "  " << miner.to_string() << ": payoff "
              << game.payoff(s, miner).to_string();
    if (const auto br = best_response(game, s, miner)) {
      std::cout << ", best response -> " << br->to_string() << " (payoff "
                << game.payoff_if_move(s, miner, *br).to_string() << ")";
    }
    std::cout << "\n";
  }

  // 3. Let the miners learn. Any better-response order converges (Thm 1);
  //    here each step is a uniformly random improving move, and the audit
  //    re-proves the ordinal-potential ascent at every step.
  auto scheduler = make_scheduler(SchedulerKind::kRandomMove, /*seed=*/7);
  LearningOptions options;
  options.record_moves = true;
  options.audit_potential = true;
  const LearningResult result = run_learning(game, s, *scheduler, options);

  std::cout << "\nbetter-response learning (" << result.steps << " steps):\n";
  result.trace.to_table().print(std::cout);

  // 4. The reached configuration is a pure equilibrium; since every coin
  //    found a miner, the miners jointly collect the full reward mass.
  const Configuration& eq = result.final_configuration;
  std::cout << "\nfinal " << eq.to_string() << "\n"
            << "is_equilibrium: " << (is_equilibrium(game, eq) ? "yes" : "no")
            << "\n"
            << "total payoff:   " << total_payoff(game, eq).to_string()
            << " (total reward " << game.rewards().total_reward().to_string()
            << ")\n"
            << "potential key:  " << potential_key(game, eq).to_string()
            << "\n";
  return 0;
}
