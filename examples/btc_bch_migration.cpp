/// \file btc_bch_migration.cpp
/// The paper's motivating episode (Figure 1), as a narrative simulation.
///
/// November 2017: the BCH exchange rate spikes while BTC dips, flipping
/// which chain pays more per unit of hashpower — and miners visibly
/// migrate, then drift back as prices revert. This example replays the
/// episode with the market simulator and prints the two series the paper
/// plots, plus the migration milestones.
///
/// Run:  ./btc_bch_migration [--days N] [--shock-day D] [--seed S] [--csv out]

#include <iostream>

#include "market/scenario.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace goc;
  using namespace goc::market;
  const Cli cli(argc, argv);

  ForkFlipParams params;
  params.days = cli.get_double("days", 30.0);
  params.shock_day = cli.get_double("shock-day", 12.0);
  params.revert_day = cli.get_double("revert-day", 15.0);
  params.seed = cli.get_u64("seed", 1711);

  std::cout << "Replaying the Nov-2017 fork flip: " << params.miners
            << " miners, shock at day " << params.shock_day
            << ", reversal at day " << params.revert_day << ".\n\n";

  MarketSimulator sim = fork_flip_scenario(params);
  const auto records = sim.run();

  Table table({"day", "BTC_$", "BCH_$", "BCH_hashrate_%"});
  double peak_share = 0.0;
  double peak_day = 0.0;
  for (std::size_t i = 23; i < records.size(); i += 24) {
    const auto& r = records[i];
    table.row() << fmt_double(r.t_hours / 24.0, 0) << fmt_double(r.prices[0], 0)
                << fmt_double(r.prices[1], 0)
                << fmt_double(100.0 * r.hashrate_share[1], 1);
  }
  for (const auto& r : records) {
    if (r.hashrate_share[1] > peak_share) {
      peak_share = r.hashrate_share[1];
      peak_day = r.t_hours / 24.0;
    }
  }
  table.print(std::cout, "Daily series (compare to the paper's Figure 1)");

  std::cout << "\nmigration peak: " << fmt_double(100.0 * peak_share, 1)
            << "% of global hashrate on BCH at day " << fmt_double(peak_day, 1)
            << "\nfinal split:    "
            << fmt_double(100.0 * records.back().hashrate_share[1], 1)
            << "% on BCH at day " << fmt_double(params.days, 0) << "\n";

  if (cli.has("csv")) {
    const std::string path = cli.get_string("csv", "fork_flip") + ".csv";
    table.save_csv(path);
    std::cout << "series saved to " << path << "\n";
  }
  return 0;
}
