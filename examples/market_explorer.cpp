/// \file market_explorer.cpp
/// Analyst's workbench: draw a random multi-coin market, enumerate (or
/// sample) its pure equilibria, and report the landscape Section 4 talks
/// about — welfare, fairness, and which miner would gain by moving the
/// system to a different equilibrium.
///
/// Run:  ./market_explorer [--miners N] [--coins C] [--seed S]
///       [--exhaustive true|false]

#include <iostream>

#include "core/generators.hpp"
#include "equilibrium/assumptions.hpp"
#include "equilibrium/better_equilibrium.hpp"
#include "equilibrium/enumerate.hpp"
#include "equilibrium/welfare.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t miners = cli.get_u64("miners", 7);
  const std::size_t coins = cli.get_u64("coins", 2);
  const std::uint64_t seed = cli.get_u64("seed", 11);
  const bool exhaustive = cli.get_bool("exhaustive", true);

  Rng rng(seed);
  GameSpec spec;
  spec.num_miners = miners;
  spec.num_coins = coins;
  spec.power_lo = 1;
  spec.power_hi = 60;
  spec.reward_lo = 40;
  spec.reward_hi = 400;
  spec.distinct_powers = true;
  spec.sort_desc = true;
  const Game game = random_game(spec, rng);
  std::cout << "market: " << game.to_string() << "\n";

  // Section 4's hypotheses, checked exactly on small instances.
  if (miners <= 16 && exhaustive) {
    const bool a1 = !find_never_alone_violation(game).has_value();
    const bool a2 = is_generic(game);
    std::cout << "Assumption 1 (never alone): " << (a1 ? "holds" : "violated")
              << "\nAssumption 2 (generic):     " << (a2 ? "holds" : "violated")
              << "\n\n";
  }

  std::vector<Configuration> equilibria;
  if (exhaustive && miners <= 20) {
    equilibria = enumerate_equilibria(game);
    std::cout << "pure equilibria (exhaustive): " << equilibria.size() << "\n";
  } else {
    equilibria = sample_equilibria(game, rng, 128);
    std::cout << "pure equilibria (sampled, lower bound): " << equilibria.size()
              << "\n";
  }

  Table table({"equilibrium", "welfare", "fairness", "rpu_spread",
               "better_for", "gain%"});
  for (const auto& eq : equilibria) {
    const auto witness = find_better_equilibrium(game, eq, equilibria);
    std::string who = "-";
    std::string gain = "-";
    if (witness) {
      who = witness->miner.to_string();
      gain = fmt_double(
          100.0 *
              (witness->payoff_after - witness->payoff_before).to_double() /
              witness->payoff_before.to_double(),
          1);
    }
    table.row() << eq.to_string() << total_payoff(game, eq).to_string()
                << fmt_double(rpu_fairness_index(game, eq), 3)
                << fmt_double(rpu_spread(game, eq), 3) << who << gain;
  }
  table.print(std::cout, "\nEquilibrium landscape (Proposition 2: with >1 "
                         "equilibrium, every row has a gainer)");
  return 0;
}
