/// \file sweep_demo.cpp
/// The sweep engine in ~40 lines: expand a miner-count × coin-count ×
/// scheduler grid, fan it across every core, and emit the aggregate table
/// plus per-scenario CSV/JSON artifacts.
///
///   ./sweep_demo --trials=5 --seed=42 --threads=0 \
///       --csv=sweep.csv --json=sweep.json
///
/// Determinism: rerunning with any `--threads` value reproduces the exact
/// same records — per-task seeds depend only on the root seed and the
/// task's position in the grid.
///
/// A second section demonstrates the shared Monte Carlo batch flags
/// (bench_common.hpp): a two-chain better-response study fanned as a
/// trajectory batch, with CI-driven stopping, crash-safe checkpoints and
/// sharded decision epochs all reachable from the command line:
///
///   ./sweep_demo --replicas=32 --stop-metric=blocks_total --stop-tol=0.02 \
///       --stop-rel --checkpoint=demo.gocr --epoch-lanes=4

#include <cstdio>
#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "chain/chain_sim.hpp"
#include "chain/difficulty.hpp"
#include "engine/sweep.hpp"
#include "io/serialize.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 5);
  const std::uint64_t seed = cli.get_u64("seed", 42);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores

  engine::SweepSpec spec;
  spec.base.power_shape = PowerShape::kPareto;
  spec.base.power_lo = 10;
  spec.base.reward_shape = RewardShape::kMajors;
  spec.base.reward_lo = 100;
  spec.base.reward_hi = 100000;
  spec.miner_counts = {20, 100};
  spec.coin_counts = {3, 6};
  spec.scheduler_kinds = {SchedulerKind::kRandomMove,
                          SchedulerKind::kRoundRobin,
                          SchedulerKind::kMaxGain};
  spec.trials = trials;
  spec.root_seed = seed;
  spec.audit_max_miners = 50;  // verify Theorem 1's potential on small runs

  std::cout << "Expanding " << spec.grid_size() << " scenarios...\n";
  const engine::SweepRunner runner({threads});
  const engine::SweepResult result = runner.run(spec);

  result.to_table().print(std::cout, "Sweep: convergence + equilibrium quality");
  std::cout << "\n[" << result.records().size() << " scenarios on "
            << result.threads() << " lanes in "
            << fmt_double(result.total_wall_ms(), 1) << " ms; all converged: "
            << (result.all_converged() ? "yes" : "NO") << "]\n";

  if (cli.has("csv")) {
    const std::string path = cli.get_string("csv", "sweep.csv");
    io::atomic_write_file(result.to_csv(), path);
    std::cout << "[per-scenario csv saved to " << path << "]\n";
  }
  if (cli.has("json")) {
    const std::string path = cli.get_string("json", "sweep.json");
    io::atomic_write_file(result.to_json(), path);
    std::cout << "[per-scenario json saved to " << path << "]\n";
  }

  // Monte Carlo trajectory batch, wired through the shared flags:
  // --replicas/--stop-*/--checkpoint (bench::apply_batch_cli) and
  // --epoch-lanes (sharded simultaneous-move decision epochs; 0 keeps
  // the sequential policy scan).
  const std::size_t epoch_lanes = bench::epoch_lanes_from_cli(cli);
  sim::TrajectoryBatchOptions batch;
  batch.replicas = 4;
  batch.root_seed = seed;
  batch.threads = threads;
  bench::apply_batch_cli(cli, batch);
  const auto chain_factory = [&](std::uint64_t task_seed) {
    std::vector<chain::ChainSpec> chains;
    chains.push_back(chain::ChainSpec{
        "heavy", 600.0, 1.0 / 6.0, 30.0,
        std::make_unique<chain::FixedWindowRetarget>(10, 1.0 / 6.0)});
    chains.push_back(chain::ChainSpec{
        "light", 600.0, 1.0 / 6.0, 10.0,
        std::make_unique<chain::FixedWindowRetarget>(10, 1.0 / 6.0)});
    chain::ChainSimOptions opts;
    opts.duration_hours = 24.0 * 5;
    opts.policy = chain::MinerPolicy::kBetterResponse;
    opts.reevaluation_fraction = 0.5;
    opts.seed = task_seed;
    opts.epoch_lanes = epoch_lanes;
    opts.record_timeline = false;
    std::vector<double> powers(12, 10.0);
    return chain::MultiChainSimulator(std::move(powers), std::move(chains),
                                      opts);
  };
  const sim::TrajectoryBatchResult batch_result =
      sim::run_chain_batch(chain_factory, batch);
  batch_result.to_table().print(
      std::cout, "Chain trajectory batch (mean / 95% CI per metric)");
  std::cout << "\n[batch: " << batch_result.replicas() << " of "
            << batch_result.replicas_requested() << " replicas ("
            << sim::stop_reason_name(batch_result.stop_reason())
            << "); epoch_lanes=" << epoch_lanes << "; values_hash "
            << batch_result.values_hash() << "]\n";

  return result.all_converged() ? 0 : 1;
}
