/// \file sweep_demo.cpp
/// The sweep engine in ~40 lines: expand a miner-count × coin-count ×
/// scheduler grid, fan it across every core, and emit the aggregate table
/// plus per-scenario CSV/JSON artifacts.
///
///   ./sweep_demo --trials=5 --seed=42 --threads=0 \
///       --csv=sweep.csv --json=sweep.json
///
/// Determinism: rerunning with any `--threads` value reproduces the exact
/// same records — per-task seeds depend only on the root seed and the
/// task's position in the grid.

#include <cstdio>
#include <iostream>

#include "engine/sweep.hpp"
#include "io/serialize.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::size_t trials = cli.get_u64("trials", 5);
  const std::uint64_t seed = cli.get_u64("seed", 42);
  const std::size_t threads = cli.get_u64("threads", 0);  // 0 = all cores

  engine::SweepSpec spec;
  spec.base.power_shape = PowerShape::kPareto;
  spec.base.power_lo = 10;
  spec.base.reward_shape = RewardShape::kMajors;
  spec.base.reward_lo = 100;
  spec.base.reward_hi = 100000;
  spec.miner_counts = {20, 100};
  spec.coin_counts = {3, 6};
  spec.scheduler_kinds = {SchedulerKind::kRandomMove,
                          SchedulerKind::kRoundRobin,
                          SchedulerKind::kMaxGain};
  spec.trials = trials;
  spec.root_seed = seed;
  spec.audit_max_miners = 50;  // verify Theorem 1's potential on small runs

  std::cout << "Expanding " << spec.grid_size() << " scenarios...\n";
  const engine::SweepRunner runner({threads});
  const engine::SweepResult result = runner.run(spec);

  result.to_table().print(std::cout, "Sweep: convergence + equilibrium quality");
  std::cout << "\n[" << result.records().size() << " scenarios on "
            << result.threads() << " lanes in "
            << fmt_double(result.total_wall_ms(), 1) << " ms; all converged: "
            << (result.all_converged() ? "yes" : "NO") << "]\n";

  if (cli.has("csv")) {
    const std::string path = cli.get_string("csv", "sweep.csv");
    io::write_text_file(result.to_csv(), path);
    std::cout << "[per-scenario csv saved to " << path << "]\n";
  }
  if (cli.has("json")) {
    const std::string path = cli.get_string("json", "sweep.json");
    io::write_text_file(result.to_json(), path);
    std::cout << "[per-scenario json saved to " << path << "]\n";
  }
  return result.all_converged() ? 0 : 1;
}
