/// \file asic_vs_gpu.cpp
/// The asymmetric market of the paper's Discussion (§6), in the shape the
/// intro motivates: whattomine.com asks which *hardware* you own before it
/// ranks coins, because SHA-256 ASICs cannot mine Ethash coins and vice
/// versa. This example builds a two-hardware-class market, shows that
/// better-response learning still converges (the Theorem 1 argument is
/// access-agnostic), and contrasts the equilibrium with its unrestricted
/// twin: restrictions strand revenue and trap miners on dominated coins.
///
/// Run:  ./asic_vs_gpu [--seed S]

#include <iostream>

#include "core/access.hpp"
#include "core/generators.hpp"
#include "core/moves.hpp"
#include "dynamics/learning.hpp"
#include "equilibrium/welfare.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace goc;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_u64("seed", 17);

  // Coins: c0 = BTC-like (SHA-256), c1 = BCH-like (SHA-256),
  //        c2 = ETH-like (Ethash), c3 = ETC-like (Ethash).
  // Miners 0-3 run ASICs, miners 4-7 run GPU rigs.
  const std::vector<std::vector<bool>> class_allows = {
      {true, true, false, false},  // ASIC
      {false, false, true, true},  // GPU
  };
  const AccessPolicy policy = AccessPolicy::hardware_classes(
      {0, 0, 0, 0, 1, 1, 1, 1}, class_allows);

  System system = System::from_integer_powers({34, 21, 13, 8, 30, 18, 11, 5}, 4);
  RewardFunction rewards = RewardFunction::from_integers({600, 140, 310, 60});
  const Game restricted(std::move(system), rewards, policy);
  const Game open_market(restricted.system_ptr(), rewards);

  std::cout << "hardware classes: miners p0-p3 = SHA-256 ASICs (c0,c1); "
               "p4-p7 = GPU rigs (c2,c3)\n"
            << "coin weights: " << rewards.to_string() << "\n\n";

  const auto settle = [&](const Game& game, const char* label) {
    Rng rng(seed);
    auto sched = make_scheduler(SchedulerKind::kRandomMiner, seed);
    LearningOptions opts;
    opts.audit_potential = true;  // Theorem 1 holds with or without access
    const auto result =
        run_learning(game, random_configuration(game, rng), *sched, opts);
    std::cout << label << ": converged after " << result.steps
              << " steps to " << result.final_configuration.to_string() << "\n";
    return result.final_configuration;
  };

  const Configuration eq_restricted = settle(restricted, "restricted market");
  const Configuration eq_open = settle(open_market, "unrestricted twin ");

  Table table({"metric", "restricted", "unrestricted"});
  table.row() << "distributed reward"
              << distributed_reward(restricted, eq_restricted).to_string()
              << distributed_reward(open_market, eq_open).to_string();
  table.row() << "revenue fairness (Jain)"
              << fmt_double(rpu_fairness_index(restricted, eq_restricted), 3)
              << fmt_double(rpu_fairness_index(open_market, eq_open), 3);
  table.row() << "RPU spread (max/min)"
              << fmt_double(rpu_spread(restricted, eq_restricted), 3)
              << fmt_double(rpu_spread(open_market, eq_open), 3);
  std::cout << "\n";
  table.print(std::cout, "Equilibrium comparison");

  // Show a concretely trapped miner, if any: a GPU miner whose RPU is
  // below what an ASIC coin pays per unit.
  for (std::uint32_t p = 4; p < 8; ++p) {
    const MinerId miner(p);
    const Rational own =
        restricted.payoff(eq_restricted, miner) / restricted.system().power(miner);
    for (std::uint32_t c = 0; c < 2; ++c) {
      const auto rpu = restricted.rpu(eq_restricted, CoinId(c));
      if (rpu.is_finite() && rpu.finite_value() > own) {
        std::cout << "\n" << miner.to_string()
                  << " earns RPU " << own.to_string() << " but SHA-256 coin "
                  << CoinId(c).to_string() << " pays "
                  << rpu.finite_value().to_string()
                  << " — profitable, unreachable, and (unlike the symmetric "
                     "case) perfectly stable.\n";
        return 0;
      }
    }
  }
  return 0;
}
