/// \file goc_serve.cpp
/// The engine daemon binary.
///
/// Default mode reads the line protocol from stdin and answers on stdout —
/// scriptable with a heredoc or a coprocess, and what the CI smoke lane
/// drives. `--port=N` serves the same protocol over a loopback-only TCP
/// listener instead (one client at a time; jobs are still asynchronous
/// on the shared pool): `quit` ends that client's connection and the
/// daemon accepts the next one. Port 0 asks the OS for a free port; the
/// chosen one is announced on stdout. Remote exposure, auth, and
/// admission control are explicitly out of scope (see ROADMAP follow-ups)
/// — the listener binds 127.0.0.1 only.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/stats_log.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

bool send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ::ssize_t n = ::send(fd, text.data() + off, text.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

int serve_tcp(goc::serve::Server& server, std::uint16_t port) {
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the daemon
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    GOC_LOG(Error) << "goc-serve: socket: " << std::strerror(errno);
    return 1;
  }
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listener, 4) != 0) {
    GOC_LOG(Error) << "goc-serve: bind/listen: " << std::strerror(errno);
    ::close(listener);
    return 1;
  }
  ::socklen_t len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<::sockaddr*>(&addr), &len) ==
      0) {
    std::cout << "listening on 127.0.0.1:" << ntohs(addr.sin_port)
              << std::endl;
  }
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      GOC_LOG(Error) << "goc-serve: accept: " << std::strerror(errno);
      break;
    }
    GOC_LOG(Debug) << "goc-serve: client connected";
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
      const ::ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while (open && (pos = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        std::ostringstream reply;
        const bool keep = server.handle_line(line, reply);
        if (!send_all(fd, reply.str())) open = false;
        if (!keep) open = false;
      }
    }
    ::close(fd);
  }
  ::close(listener);
  return 0;
}

int run(int argc, char** argv) {
  const goc::Cli cli(argc, argv);
  const std::vector<std::string> stray = cli.unknown(
      {"threads", "port", "help", "verbose", "stats-log", "stats-interval"});
  if (!stray.empty()) {
    std::cerr << "goc-serve: unknown option(s):";
    for (const auto& name : stray) std::cerr << " --" << name;
    std::cerr << "\n";
    return 2;
  }
  if (cli.get_bool("help", false)) {
    std::cout << "goc-serve [--threads=N] [--port=P] [--verbose]\n"
              << "          [--stats-log=PATH] [--stats-interval=MS]\n"
              << "  line protocol on stdin/stdout (or a loopback TCP\n"
              << "  listener with --port; port 0 = OS-assigned).\n"
              << "  --verbose lowers the stderr log level to debug\n"
              << "  (GOC_LOG_LEVEL presets it); --stats-log appends one\n"
              << "  JSON metrics snapshot per interval (default 1000 ms)\n"
              << "  to PATH as JSONL.\n"
              << "  Type 'help' at the prompt for the command grammar.\n";
    return 0;
  }
  if (cli.get_bool("verbose", false)) {
    goc::set_log_level(goc::LogLevel::Debug);
  }
  std::unique_ptr<goc::obs::StatsLogger> stats_log;
  if (cli.has("stats-log")) {
    goc::obs::StatsLogger::Options log_options;
    log_options.path = cli.get_string("stats-log", "");
    log_options.interval_ms = cli.get_u64("stats-interval", 1000);
    try {
      stats_log = std::make_unique<goc::obs::StatsLogger>(log_options);
    } catch (const std::exception& error) {
      std::cerr << "goc-serve: " << error.what() << "\n";
      return 2;
    }
    GOC_LOG(Info) << "goc-serve: stats JSONL -> " << log_options.path
                  << " every " << log_options.interval_ms << " ms";
  }
  goc::serve::ServerOptions options;
  options.threads = cli.get_u64("threads", 0);
  goc::serve::Server server(options);
  GOC_LOG(Debug) << "goc-serve: pool ready with " << server.lanes()
                 << " lanes";
  if (cli.has("port")) {
    return serve_tcp(server,
                     static_cast<std::uint16_t>(cli.get_u64("port", 0)));
  }
  server.serve(std::cin, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
