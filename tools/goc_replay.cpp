#include <iostream>
#include <string>
#include <vector>

#include "replay/golden.hpp"
#include "replay/replay.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

/// \file goc_replay.cpp
/// `goc-replay` — record, verify and inspect binary replay artifacts.
///
/// ```
/// goc-replay record --scenario=chain --out=GOLDEN_chain.gocr
///                   [--seed=N] [--replicas=N] [--stride=N]
/// goc-replay verify <artifact>...          # exit 0 iff every file matches
/// goc-replay info   <artifact>             # header + frame census
/// goc-replay batch  --checkpoint=<path>    # crash-demo checkpointed batch
///                   [--replicas=N] [--interval=N] [--threads=N] [--seed=N]
///                   [--adaptive] [--kill-after=N]
/// ```
///
/// `verify` re-runs the scenario named inside each artifact and compares
/// the regenerated frames bit for bit — the committed goldens under
/// bench/baselines/ go through this in CI on every compiler. `batch` is
/// the fault-injection workload: with `--kill-after=N` the process
/// SIGKILLs itself inside the Nth checkpoint write, leaving an artifact
/// for the harness to corrupt and resume.

namespace {

int usage(const char* program) {
  std::cerr << "usage: " << program
            << " record|verify|info|batch [options]\n"
               "  record --scenario=chain|market|fig1 --out=PATH"
               " [--seed= --replicas= --stride=]\n"
               "  verify PATH...\n"
               "  info PATH [--strict]\n"
               "  batch --checkpoint=PATH [--replicas= --interval= --threads="
               " --seed= --adaptive --kill-after=]\n";
  return 2;
}

int run_record(const goc::Cli& cli) {
  goc::replay::GoldenOptions options;
  options.scenario = cli.get_string("scenario", options.scenario);
  options.seed = cli.get_u64("seed", options.seed);
  options.replicas =
      static_cast<std::size_t>(cli.get_u64("replicas", options.replicas));
  options.snapshot_stride = static_cast<std::size_t>(
      cli.get_u64("stride", options.snapshot_stride));
  const std::string out = cli.get_string("out", "");
  if (out.empty()) {
    std::cerr << "record: --out=PATH is required\n";
    return 2;
  }
  goc::replay::record_golden_file(options, out);
  std::cout << "recorded scenario '" << options.scenario << "' (seed "
            << options.seed << ", " << options.replicas << " replicas) to "
            << out << "\n";
  return 0;
}

int run_verify(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    std::cerr << "verify: at least one artifact path is required\n";
    return 2;
  }
  int failures = 0;
  for (const std::string& path : paths) {
    const goc::replay::VerifyReport report =
        goc::replay::verify_golden_file(path);
    if (report.ok) {
      std::cout << "OK   " << path << " (" << report.scenario << ", "
                << report.frames << " frames)\n";
    } else {
      std::cout << "FAIL " << path << ": " << report.detail << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int run_info(const goc::Cli& cli, const std::vector<std::string>& paths) {
  if (paths.size() != 1) {
    std::cerr << "info: exactly one artifact path is required\n";
    return 2;
  }
  const bool salvage = !cli.get_bool("strict", false);
  const goc::replay::ArtifactInfo info =
      goc::replay::inspect_file(paths.front(), salvage);
  std::cout << paths.front() << "\n" << goc::replay::render_info(info);
  return 0;
}

int run_batch(const goc::Cli& cli) {
  goc::replay::CrashBatchOptions options;
  options.checkpoint_path = cli.get_string("checkpoint", "");
  options.seed = cli.get_u64("seed", options.seed);
  options.replicas =
      static_cast<std::size_t>(cli.get_u64("replicas", options.replicas));
  options.interval =
      static_cast<std::size_t>(cli.get_u64("interval", options.interval));
  options.threads =
      static_cast<std::size_t>(cli.get_u64("threads", options.threads));
  options.kill_after =
      static_cast<std::size_t>(cli.get_u64("kill-after", options.kill_after));
  options.adaptive = cli.get_bool("adaptive", options.adaptive);
  if (options.checkpoint_path.empty()) {
    std::cerr << "batch: --checkpoint=PATH is required\n";
    return 2;
  }
  const goc::sim::TrajectoryBatchResult result =
      goc::replay::run_crash_demo_batch(options);
  std::cout << "completed " << result.replicas() << "/"
            << result.replicas_requested() << " replicas ("
            << goc::sim::stop_reason_name(result.stop_reason())
            << "), values hash " << result.values_hash() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  const goc::Cli cli(argc - 1, argv + 1);
  if (cli.get_bool("verbose", false)) {
    goc::set_log_level(goc::LogLevel::Debug);
  }
  try {
    if (command == "record") return run_record(cli);
    if (command == "verify") return run_verify(cli.positional());
    if (command == "info") return run_info(cli, cli.positional());
    if (command == "batch") return run_batch(cli);
  } catch (const std::exception& e) {
    std::cerr << command << ": " << e.what() << "\n";
    return 1;
  }
  return usage(argv[0]);
}
